package nds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestDifferentialSegmentsVsRead holds the zero-copy segment read path to the
// copying path's contract: for the same sequence of operations on two
// identically-driven devices, reassembling ReadSegments' segments (gaps as
// zeros) must reproduce ReadInto's bytes exactly, and every operation's Stats
// — including simulated Elapsed — must be identical. The configurations cover
// each assembler the plan phase can emit segments from: demand-path pages,
// cache hits, compressed block images, write-buffered staging, and phantom
// devices (which carry timing but no payload).
func TestDifferentialSegmentsVsRead(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"hardware", Options{Mode: ModeHardware, CapacityHint: 16 << 20}},
		{"software", Options{Mode: ModeSoftware, CapacityHint: 16 << 20}},
		{"cached", Options{Mode: ModeHardware, CapacityHint: 16 << 20, CacheBytes: 4 << 20, PrefetchDepth: 2}},
		{"compressed", Options{Mode: ModeHardware, CapacityHint: 16 << 20, Compress: true}},
		{"write-buffered", Options{Mode: ModeHardware, CapacityHint: 16 << 20, WriteBuffering: true}},
		{"phantom", Options{Mode: ModeHardware, CapacityHint: 16 << 20, Phantom: true}},
	}
	// Partition shapes exercised against every configuration. The wide/flat
	// shapes split building blocks across page boundaries unevenly, and the
	// whole-space read crosses everything at once.
	subs := [][]int64{{64, 64}, {16, 128}, {128, 32}, {256, 256}}

	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			type opRecord struct {
				stats Stats
				data  []byte
			}
			run := func(useSegments bool) []opRecord {
				d, err := Open(cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				id, err := d.CreateSpace(4, []int64{256, 256})
				if err != nil {
					t.Fatal(err)
				}
				v, err := d.OpenSpace(id, []int64{256, 256})
				if err != nil {
					t.Fatal(err)
				}
				defer v.Close()
				// Write the middle half only, with runs of repeats so the
				// compressed configuration actually compresses: reads below
				// cross written data, unwritten zeros, and the boundary.
				payload := make([]byte, 128*256*4)
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < len(payload); {
					b, n := byte(rng.Intn(256)), rng.Intn(64)+1
					for j := 0; j < n && i < len(payload); j++ {
						payload[i] = b
						i++
					}
				}
				if _, err := v.Write([]int64{0, 0}, []int64{128, 256}, payload); err != nil {
					t.Fatal(err)
				}
				// Touch part of it again so the write buffer (when enabled)
				// holds staged data during the reads.
				if _, err := v.Write([]int64{2, 1}, []int64{32, 64}, payload[:32*64*4]); err != nil {
					t.Fatal(err)
				}

				var recs []opRecord
				for _, sub := range subs {
					n0, n1 := 256/sub[0], 256/sub[1]
					for c0 := int64(0); c0 < n0; c0++ {
						for c1 := int64(0); c1 < n1; c1++ {
							coord := []int64{c0, c1}
							want := sub[0] * sub[1] * 4
							buf := make([]byte, want)
							var rec opRecord
							if useSegments {
								// Prefill with a sentinel: segment gaps must
								// be zeros in the reassembly, so overwrite
								// with zeros first and let segments land on
								// top — exactly what a zero-copy consumer
								// (the server's gather-writer) does.
								for i := range buf {
									buf[i] = 0
								}
								st, err := v.ReadSegments(coord, sub, func(got int64, segs []Segment) error {
									if got != want {
										return fmt.Errorf("want %d bytes, got %d", want, got)
									}
									for _, sg := range segs {
										copy(buf[sg.Dst:], sg.Src)
									}
									return nil
								})
								if err != nil {
									t.Fatalf("sub=%v coord=%v: ReadSegments: %v", sub, coord, err)
								}
								rec = opRecord{stats: st, data: buf}
							} else {
								data, st, err := v.ReadInto(coord, sub, buf)
								if err != nil {
									t.Fatalf("sub=%v coord=%v: ReadInto: %v", sub, coord, err)
								}
								if data == nil { // phantom: the contract is all-zeros
									data = buf
								}
								rec = opRecord{stats: st, data: data}
							}
							recs = append(recs, rec)
						}
					}
				}
				return recs
			}

			copied := run(false)
			segmented := run(true)
			if len(copied) != len(segmented) {
				t.Fatalf("op counts diverge: %d vs %d", len(copied), len(segmented))
			}
			for i := range copied {
				if copied[i].stats != segmented[i].stats {
					t.Errorf("op %d stats diverge:\n  copy:     %+v\n  segments: %+v",
						i, copied[i].stats, segmented[i].stats)
				}
				if !bytes.Equal(copied[i].data, segmented[i].data) {
					t.Errorf("op %d payload bytes diverge between copy and segment assembly", i)
				}
			}
		})
	}
}

// BenchmarkReadSegments measures the zero-copy read path end to end: a
// steady-state tile read through ReadSegments should allocate nothing — the
// plan scratch is pooled, the segment slice is retained on the scratch, and
// no destination buffer exists at all. Compare with the ReadInto variant,
// which differs only by the assembly copy.
func BenchmarkReadSegments(b *testing.B) {
	d, id := fillSpace(b)
	defer d.Close()
	v, err := d.OpenSpace(id, []int64{1024, 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer v.Close()
	var sink int64
	fn := func(want int64, segs []Segment) error {
		for _, sg := range segs {
			sink += int64(len(sg.Src))
		}
		return nil
	}
	b.Run("segments", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tile := int64(i % 256)
			if _, err := v.ReadSegments([]int64{tile / 16, tile % 16}, []int64{64, 64}, fn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("readinto", func(b *testing.B) {
		buf := make([]byte, 64*64*4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tile := int64(i % 256)
			if _, _, err := v.ReadInto([]int64{tile / 16, tile % 16}, []int64{64, 64}, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestShardedClockDifferential pins down the sharded clock's core invariant:
// identical Acquire order and arguments produce bit-identical completion
// times, no matter which goroutines perform the operations. The same strict
// round-robin schedule of tile reads runs twice on fresh devices — once on a
// single goroutine, once spread across eight goroutines that hand a token
// around to enforce the same total order — and every operation's simulated
// Elapsed must match. Run under -race (CI does) this is also the memory-model
// check for the lock-free resource timelines: a missing happens-before edge
// on the published horizons shows up here as a data race or a timing split.
func TestShardedClockDifferential(t *testing.T) {
	const (
		streams = 8
		rounds  = 16 // rounds * streams = 128 tile reads
	)
	run := func(concurrent bool) []time.Duration {
		d, id := fillSpace(t)
		defer d.Close()
		views := make([]*Space, streams)
		for i := range views {
			v, err := d.OpenSpace(id, []int64{1024, 1024})
			if err != nil {
				t.Fatal(err)
			}
			views[i] = v
		}
		defer func() {
			for _, v := range views {
				v.Close()
			}
		}()
		out := make([]time.Duration, streams*rounds)
		readOp := func(s, r int) {
			tile := int64(s*rounds + r)
			buf := make([]byte, 64*64*4)
			_, st, err := views[s].ReadInto([]int64{tile / 16, tile % 16}, []int64{64, 64}, buf)
			if err != nil {
				t.Errorf("stream %d round %d: %v", s, r, err)
				return
			}
			out[r*streams+s] = st.Elapsed
		}
		if !concurrent {
			for r := 0; r < rounds; r++ {
				for s := 0; s < streams; s++ {
					readOp(s, r)
				}
			}
			return out
		}
		// Token ring: stream s performs its round-r read only when handed the
		// token, then passes it on — the exact total order of the sequential
		// run, executed by eight goroutines.
		tokens := make([]chan struct{}, streams)
		for i := range tokens {
			tokens[i] = make(chan struct{}, 1)
		}
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					<-tokens[s]
					readOp(s, r)
					tokens[(s+1)%streams] <- struct{}{}
				}
			}(s)
		}
		tokens[0] <- struct{}{}
		wg.Wait()
		return out
	}

	sequential := run(false)
	tokenRing := run(true)
	diverged := 0
	for i := range sequential {
		if sequential[i] != tokenRing[i] {
			diverged++
			if diverged <= 5 {
				t.Errorf("op %d: sequential Elapsed %v, token-ring Elapsed %v",
					i, sequential[i], tokenRing[i])
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%d/%d operations timed differently across goroutine placements", diverged, len(sequential))
	}
}
