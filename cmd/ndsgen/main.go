// Command ndsgen reproduces the paper's dataset generators (Appendix
// A.3.4), emitting binary-encoded datasets in the self-describing .ndsmat
// container format.
//
// Usage:
//
//	ndsgen matrix -m 4096 -n 4096 -seed 1 -o a.ndsmat
//	ndsgen tensor -m 512 -n 512 -k 512 -o t.ndsmat
//	ndsgen clustering -m 65536 -n 64 -k 16 -o points.ndsmat
//	ndsgen graph -m 4096 -edges 65536 -o g.ndsmat
//	ndsgen pagerank -m 4096 -degree 8 -o pr.ndsmat
package main

import (
	"flag"
	"fmt"
	"os"

	"nds/internal/datagen"
	"nds/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	m := fs.Int("m", 1024, "first dimension / vertex count / point count")
	n := fs.Int("n", 1024, "second dimension / attribute count")
	k := fs.Int("k", 16, "third dimension / cluster count")
	edges := fs.Int64("edges", 4096, "edge count (graph)")
	degree := fs.Int("degree", 8, "average out-degree (pagerank)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	var dims []int64
	var payload []byte
	switch cmd {
	case "matrix":
		mtx := datagen.Matrix(*m, *n, *seed)
		dims, payload = []int64{int64(*m), int64(*n)}, mtx.Bytes()
	case "tensor":
		t := datagen.Tensor(*m, *n, *k, *seed)
		dims, payload = []int64{int64(*m), int64(*n), int64(*k)}, t.Bytes()
	case "clustering":
		pts, _, err := datagen.Clustering(*m, *n, *k, *seed)
		check(err)
		dims, payload = []int64{int64(*m), int64(*n)}, pts.Bytes()
	case "graph":
		adj, err := datagen.Graph(*m, *edges, *seed)
		check(err)
		dims, payload = []int64{int64(*m), int64(*m)}, adj.Bytes()
	case "pagerank":
		adj, err := datagen.PageRankGraph(*m, *degree, *seed)
		check(err)
		dims, payload = []int64{int64(*m), int64(*m)}, adj.Bytes()
	case "info":
		info(fs.Arg(0))
		return
	default:
		usage()
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	check(datagen.WriteContainer(w, dims, payload))
	if *out != "" {
		fmt.Fprintf(os.Stderr, "ndsgen: wrote %s (%s, %d bytes payload)\n",
			*out, cmd, len(payload))
	}
}

func info(path string) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "ndsgen info: missing file argument")
		os.Exit(2)
	}
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	dims, payload, err := datagen.ReadContainer(f)
	check(err)
	fmt.Printf("%s: dims=%v, %d float32 elements (%d bytes)\n",
		path, dims, len(payload)/4, len(payload))
	if len(dims) == 2 && dims[0]*dims[1] <= 1<<22 {
		mtx, err := tensor.MatrixFromBytes(int(dims[0]), int(dims[1]), payload)
		check(err)
		var nz int64
		for _, v := range mtx.Data {
			if v != 0 {
				nz++
			}
		}
		fmt.Printf("non-zero elements: %d (%.2f%%)\n", nz, 100*float64(nz)/float64(len(mtx.Data)))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndsgen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ndsgen {matrix|tensor|clustering|graph|pagerank|info} [flags]")
	os.Exit(2)
}
