// Command ndsctl inspects NDS layout decisions: given a device geometry and
// a space description it reports the building-block sizing (Equations 1-4),
// the index shape and footprint, and — for a partition — the translated
// extent and page counts, showing what a request would cost before running
// a full experiment.
//
// The scan and reduce subcommands instead talk to a live ndsd: they open a
// view of an existing space over the wire and execute a pushdown operator,
// so an operator can run an in-storage query against a running daemon the
// same way the library does.
//
// Usage:
//
//	ndsctl size -elem 8 -dims 32768,32768
//	ndsctl size -elem 4 -dims 2048,2048,2048 -order 3
//	ndsctl plan -elem 8 -dims 32768,32768 -coord 1,0 -sub 8192,8192
//	ndsctl scan -addr unix:/tmp/nds.sock -space 1 -dims 1024,1024 -coord 0,0 -sub 256,256 -lo 0 -hi 9
//	ndsctl scan -addr unix:/tmp/nds.sock -space 2 -elem 4 -dims 1024,1024 -coord 0,0 -sub 256,256 -flo 0.5 -fhi 1.5
//	ndsctl reduce -addr unix:/tmp/nds.sock -space 1 -dims 1024,1024 -coord 0,0 -sub 256,256 -op topk -k 4
//
// -flo/-fhi express the predicate over float32/float64 values stored in the
// order-preserving key encoding (see nds.FloatKey32/FloatKey64): the bounds
// are encoded before the query ships and matches decode back to floats.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"nds/internal/ndsclient"
	"nds/internal/nvm"
	"nds/internal/proto"
	"nds/internal/stl"
	"nds/internal/system"
	"nds/internal/tensor"
)

func parseDims(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	elem := fs.Int("elem", 8, "element size in bytes")
	dimsStr := fs.String("dims", "32768,32768", "space dimensionality, comma separated")
	coordStr := fs.String("coord", "", "partition coordinate (plan)")
	subStr := fs.String("sub", "", "partition sub-dimensionality (plan)")
	order := fs.Int("order", 0, "building-block order (0 = paper default)")
	mult := fs.Int("mult", 2, "building-block multiplier (paper prototype: 2)")
	channels := fs.Int("channels", 32, "device channels")
	banks := fs.Int("banks", 8, "banks per channel")
	page := fs.Int("page", 4096, "page size in bytes")
	addr := fs.String("addr", "", "ndsd address: unix:/path, tcp:host:port, or host:port (scan/reduce)")
	space := fs.Uint("space", 0, "space ID on the ndsd server (scan/reduce)")
	lo := fs.Uint64("lo", 0, "predicate lower bound, inclusive (scan/reduce)")
	hi := fs.Uint64("hi", ^uint64(0), "predicate upper bound, inclusive (scan/reduce)")
	flo := fs.Float64("flo", math.Inf(-1), "float predicate lower bound, inclusive; the space must hold order-preserving float keys of -elem 4 or 8 (scan/reduce)")
	fhi := fs.Float64("fhi", math.Inf(1), "float predicate upper bound, inclusive (scan/reduce)")
	op := fs.String("op", "sum", "reduction: sum, min, max, count, topk (reduce)")
	k := fs.Uint("k", 0, "top-k depth (reduce -op topk)")
	pred := fs.Bool("pred", false, "apply the -lo/-hi predicate to the reduction (reduce)")
	limit := fs.Int("limit", 32, "matches to print; 0 prints every match (scan)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	dims, err := parseDims(*dimsStr)
	check(err)

	geo := nvm.Geometry{Channels: *channels, Banks: *banks, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: *page}
	switch cmd {
	case "size":
		sz, err := stl.SizeBuildingBlock(geo, *elem, len(dims), *order, *mult)
		check(err)
		fmt.Printf("device: %d channels x %d banks, %d B pages\n", *channels, *banks, *page)
		fmt.Printf("BB_min (Eq.1%s): %d B\n", map[bool]string{true: "+3"}[sz.Order == 3], sz.MinBytes)
		fmt.Printf("building block: order %d, %d elements per dimension -> %v\n", sz.Order, sz.PerDim, sz.Dims)
		fmt.Printf("block bytes: %d (%d pages, %.1f per channel)\n",
			sz.Bytes, sz.PagesPerBB, float64(sz.PagesPerBB)/float64(*channels))
		grid := make([]int64, len(dims))
		blocks := int64(1)
		for i, d := range dims {
			grid[i] = (d + sz.Dims[i] - 1) / sz.Dims[i]
			blocks *= grid[i]
		}
		var vol int64 = int64(*elem)
		for _, d := range dims {
			vol *= d
		}
		fmt.Printf("space: %v (%d B) -> grid %v (%d blocks)\n", dims, vol, grid, blocks)
		fmt.Printf("index estimate: ~%d B (B-tree of %d levels)\n",
			blocks*(8+int64(sz.PagesPerBB)*4), len(dims))

	case "plan":
		if *coordStr == "" || *subStr == "" {
			fmt.Fprintln(os.Stderr, "ndsctl plan: -coord and -sub required")
			os.Exit(2)
		}
		coord, err := parseDims(*coordStr)
		check(err)
		sub, err := parseDims(*subStr)
		check(err)
		var vol int64 = int64(*elem)
		for _, d := range dims {
			vol *= d
		}
		cfg := system.PrototypeConfig(vol, true)
		cfg.Geometry.Channels, cfg.Geometry.Banks, cfg.Geometry.PageSize = *channels, *banks, *page
		if *order != 0 {
			cfg.STL.BBOrder = *order
		}
		cfg.STL.BBMultiplier = *mult
		dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, true)
		check(err)
		st, err := stl.New(dev, cfg.STL)
		check(err)
		sp, err := st.CreateSpace(*elem, dims)
		check(err)
		v, err := stl.NewView(sp, dims)
		check(err)
		exts, err := v.Extents(coord, sub)
		check(err)
		shape, elems, err := v.PartitionShape(coord, sub)
		check(err)
		blocks := map[int64]bool{}
		var bytes int64
		minLen, maxLen := int64(1<<62), int64(0)
		for _, e := range exts {
			blocks[e.Block] = true
			bytes += e.Len
			if e.Len < minLen {
				minLen = e.Len
			}
			if e.Len > maxLen {
				maxLen = e.Len
			}
		}
		fmt.Printf("space %v, blocks %v\n", dims, sp.BlockDims())
		fmt.Printf("partition coord=%v sub=%v -> shape %v (%d elements, %d B)\n",
			coord, sub, shape, elems, elems*int64(*elem))
		fmt.Printf("translation: %d extents (%d B) over %d building blocks (extent %d..%d B)\n",
			len(exts), bytes, len(blocks), minLen, maxLen)
		fmt.Printf("one NDS command replaces a %d-request row-store gather\n", shape[0])

	case "scan", "reduce":
		if *addr == "" {
			fmt.Fprintf(os.Stderr, "ndsctl %s: -addr required (a live ndsd)\n", cmd)
			os.Exit(2)
		}
		if *coordStr == "" || *subStr == "" {
			fmt.Fprintf(os.Stderr, "ndsctl %s: -coord and -sub required\n", cmd)
			os.Exit(2)
		}
		coord, err := parseDims(*coordStr)
		check(err)
		sub, err := parseDims(*subStr)
		check(err)
		// -flo/-fhi express the predicate over float values stored in the
		// order-preserving key encoding (FloatKey32/FloatKey64): the bounds
		// encode to the uint range whose unsigned comparison the STL already
		// implements, and matched values decode back for printing.
		floatPred := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "flo" || f.Name == "fhi" {
				floatPred = true
			}
		})
		if floatPred {
			switch *elem {
			case 4:
				*lo, *hi = uint64(tensor.Key32(float32(*flo))), uint64(tensor.Key32(float32(*fhi)))
			case 8:
				*lo, *hi = tensor.Key64(*flo), tensor.Key64(*fhi)
			default:
				fmt.Fprintf(os.Stderr, "ndsctl %s: -flo/-fhi need -elem 4 or 8 (order-preserving float keys), got %d\n", cmd, *elem)
				os.Exit(2)
			}
			*pred = true // float bounds imply the reduce predicate
		}
		fmtVal := func(v uint64) string {
			if !floatPred {
				return fmt.Sprintf("%d", v)
			}
			if *elem == 4 {
				return fmt.Sprintf("%g", tensor.FromKey32(uint32(v)))
			}
			return fmt.Sprintf("%g", tensor.FromKey64(v))
		}
		fmtPred := func() string {
			if floatPred {
				return fmt.Sprintf("[%g, %g] (keys [%#x, %#x])", *flo, *fhi, *lo, *hi)
			}
			return fmt.Sprintf("[%d, %d]", *lo, *hi)
		}
		c, err := ndsclient.Dial(*addr)
		check(err)
		defer c.Close()
		view, err := c.OpenView(uint32(*space), 0, dims)
		check(err)
		defer c.CloseView(view)

		if cmd == "scan" {
			fmt.Printf("scan space %d view %v, partition coord=%v sub=%v, pred %s\n",
				*space, dims, coord, sub, fmtPred())
			printed, pages := 0, 0
			cursor := int64(0)
			for {
				res, err := c.Scan(view, coord, sub, *lo, *hi, cursor, 0)
				check(err)
				pages++
				if pages == 1 {
					fmt.Printf("%d matches\n", res.Total)
				}
				for _, m := range res.Matches {
					if *limit > 0 && printed >= *limit {
						break
					}
					fmt.Printf("  [%d] = %s\n", m.Index, fmtVal(m.Value))
					printed++
				}
				if res.NextCursor < 0 || (*limit > 0 && printed >= *limit) {
					if res.NextCursor >= 0 {
						fmt.Printf("  ... (-limit %d; rerun with -limit 0 for all)\n", *limit)
					}
					break
				}
				cursor = res.NextCursor
			}
			fmt.Printf("printed %d across %d result page(s); a read would have moved the whole partition\n",
				printed, pages)
			return
		}

		var opCode uint8
		switch *op {
		case "sum":
			opCode = proto.ReduceOpSum
		case "min":
			opCode = proto.ReduceOpMin
		case "max":
			opCode = proto.ReduceOpMax
		case "count":
			opCode = proto.ReduceOpCount
		case "topk":
			opCode = proto.ReduceOpTopK
		default:
			fmt.Fprintf(os.Stderr, "ndsctl reduce: unknown -op %q (sum, min, max, count, topk)\n", *op)
			os.Exit(2)
		}
		var predRange *[2]uint64
		if *pred {
			predRange = &[2]uint64{*lo, *hi}
		}
		res, err := c.Reduce(view, coord, sub, opCode, uint32(*k), predRange)
		check(err)
		fmt.Printf("reduce %s space %d, partition coord=%v sub=%v", *op, *space, coord, sub)
		if predRange != nil {
			fmt.Printf(", pred %s", fmtPred())
		}
		fmt.Println()
		switch opCode {
		case proto.ReduceOpSum:
			fmt.Printf("sum = %d over %d elements\n", res.Value, res.Count)
		case proto.ReduceOpCount:
			fmt.Printf("count = %d\n", res.Count)
		case proto.ReduceOpMin, proto.ReduceOpMax:
			if res.Count == 0 {
				fmt.Println("no elements matched")
			} else {
				fmt.Printf("%s = %s at index %d (%d considered)\n", *op, fmtVal(res.Value), res.Index, res.Count)
			}
		case proto.ReduceOpTopK:
			fmt.Printf("top %d of %d considered:\n", len(res.TopK), res.Count)
			for _, m := range res.TopK {
				fmt.Printf("  [%d] = %s\n", m.Index, fmtVal(m.Value))
			}
		}

	default:
		usage()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndsctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ndsctl {size|plan|scan|reduce} [flags]")
	os.Exit(2)
}
