// Command ndsctl inspects NDS layout decisions: given a device geometry and
// a space description it reports the building-block sizing (Equations 1-4),
// the index shape and footprint, and — for a partition — the translated
// extent and page counts, showing what a request would cost before running
// a full experiment.
//
// Usage:
//
//	ndsctl size -elem 8 -dims 32768,32768
//	ndsctl size -elem 4 -dims 2048,2048,2048 -order 3
//	ndsctl plan -elem 8 -dims 32768,32768 -coord 1,0 -sub 8192,8192
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nds/internal/nvm"
	"nds/internal/stl"
	"nds/internal/system"
)

func parseDims(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	elem := fs.Int("elem", 8, "element size in bytes")
	dimsStr := fs.String("dims", "32768,32768", "space dimensionality, comma separated")
	coordStr := fs.String("coord", "", "partition coordinate (plan)")
	subStr := fs.String("sub", "", "partition sub-dimensionality (plan)")
	order := fs.Int("order", 0, "building-block order (0 = paper default)")
	mult := fs.Int("mult", 2, "building-block multiplier (paper prototype: 2)")
	channels := fs.Int("channels", 32, "device channels")
	banks := fs.Int("banks", 8, "banks per channel")
	page := fs.Int("page", 4096, "page size in bytes")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	dims, err := parseDims(*dimsStr)
	check(err)

	geo := nvm.Geometry{Channels: *channels, Banks: *banks, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: *page}
	switch cmd {
	case "size":
		sz, err := stl.SizeBuildingBlock(geo, *elem, len(dims), *order, *mult)
		check(err)
		fmt.Printf("device: %d channels x %d banks, %d B pages\n", *channels, *banks, *page)
		fmt.Printf("BB_min (Eq.1%s): %d B\n", map[bool]string{true: "+3"}[sz.Order == 3], sz.MinBytes)
		fmt.Printf("building block: order %d, %d elements per dimension -> %v\n", sz.Order, sz.PerDim, sz.Dims)
		fmt.Printf("block bytes: %d (%d pages, %.1f per channel)\n",
			sz.Bytes, sz.PagesPerBB, float64(sz.PagesPerBB)/float64(*channels))
		grid := make([]int64, len(dims))
		blocks := int64(1)
		for i, d := range dims {
			grid[i] = (d + sz.Dims[i] - 1) / sz.Dims[i]
			blocks *= grid[i]
		}
		var vol int64 = int64(*elem)
		for _, d := range dims {
			vol *= d
		}
		fmt.Printf("space: %v (%d B) -> grid %v (%d blocks)\n", dims, vol, grid, blocks)
		fmt.Printf("index estimate: ~%d B (B-tree of %d levels)\n",
			blocks*(8+int64(sz.PagesPerBB)*4), len(dims))

	case "plan":
		if *coordStr == "" || *subStr == "" {
			fmt.Fprintln(os.Stderr, "ndsctl plan: -coord and -sub required")
			os.Exit(2)
		}
		coord, err := parseDims(*coordStr)
		check(err)
		sub, err := parseDims(*subStr)
		check(err)
		var vol int64 = int64(*elem)
		for _, d := range dims {
			vol *= d
		}
		cfg := system.PrototypeConfig(vol, true)
		cfg.Geometry.Channels, cfg.Geometry.Banks, cfg.Geometry.PageSize = *channels, *banks, *page
		if *order != 0 {
			cfg.STL.BBOrder = *order
		}
		cfg.STL.BBMultiplier = *mult
		dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, true)
		check(err)
		st, err := stl.New(dev, cfg.STL)
		check(err)
		sp, err := st.CreateSpace(*elem, dims)
		check(err)
		v, err := stl.NewView(sp, dims)
		check(err)
		exts, err := v.Extents(coord, sub)
		check(err)
		shape, elems, err := v.PartitionShape(coord, sub)
		check(err)
		blocks := map[int64]bool{}
		var bytes int64
		minLen, maxLen := int64(1<<62), int64(0)
		for _, e := range exts {
			blocks[e.Block] = true
			bytes += e.Len
			if e.Len < minLen {
				minLen = e.Len
			}
			if e.Len > maxLen {
				maxLen = e.Len
			}
		}
		fmt.Printf("space %v, blocks %v\n", dims, sp.BlockDims())
		fmt.Printf("partition coord=%v sub=%v -> shape %v (%d elements, %d B)\n",
			coord, sub, shape, elems, elems*int64(*elem))
		fmt.Printf("translation: %d extents (%d B) over %d building blocks (extent %d..%d B)\n",
			len(exts), bytes, len(blocks), minLen, maxLen)
		fmt.Printf("one NDS command replaces a %d-request row-store gather\n", shape[0])

	default:
		usage()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndsctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ndsctl {size|plan} [flags]")
	os.Exit(2)
}
