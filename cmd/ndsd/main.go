// Command ndsd serves an nds.Device over the §5.3.1 wire protocol: a TCP
// and/or unix-socket daemon in front of the simulated NDS drive, so external
// clients (ndsbench -net, internal/ndsclient) drive the command set the way
// a real host would — over a socket, concurrently, with tail latencies worth
// measuring.
//
// Usage:
//
//	ndsd -unix /tmp/nds.sock
//	ndsd -tcp 127.0.0.1:9025 -mode hardware -capacity 67108864
//	ndsd -unix /tmp/nds.sock -tcp :9025 -cache 8388608 -prefetch 2
//
// SIGINT/SIGTERM begin a graceful drain: accepting stops, requests already
// received finish and flush, per-connection views close, and the process
// exits 0. A second signal — or the drain timeout — forces the exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nds"
	"nds/internal/ndsserver"
)

func main() {
	tcpAddr := flag.String("tcp", "", "TCP listen address (host:port); empty disables")
	unixPath := flag.String("unix", "", "unix socket path; empty disables")
	mode := flag.String("mode", "hardware", "NDS implementation: hardware or software")
	capacity := flag.Int64("capacity", 64<<20, "simulated flash capacity hint in bytes")
	cache := flag.Int64("cache", 0, "building-block DRAM cache bytes (0 = off)")
	prefetch := flag.Int("prefetch", 0, "dimensional prefetch depth in blocks (needs -cache)")
	maxConns := flag.Int("maxconns", ndsserver.DefaultMaxConns, "connection limit")
	inflight := flag.Int("inflight", ndsserver.DefaultMaxInFlight, "per-connection in-flight request limit")
	readTimeout := flag.Duration("readtimeout", ndsserver.DefaultReadTimeout, "per-connection idle read deadline")
	writeTimeout := flag.Duration("writetimeout", ndsserver.DefaultWriteTimeout, "per-response write deadline")
	drainTimeout := flag.Duration("draintimeout", 10*time.Second, "graceful drain bound on shutdown")
	quiet := flag.Bool("quiet", false, "suppress connection-level logging")
	pushdown := flag.Bool("pushdown", true, "serve the pushdown_scan/pushdown_reduce opcodes (false answers unsupported_opcode)")
	qosWeight := flag.Float64("qos-weight-default", 0, "default tenant QoS weight; > 0 enables per-space weighted fair scheduling")
	qosRate := flag.Float64("qos-rate", 0, "default per-tenant token-bucket rate in bytes/s (0 = uncapped; implies QoS on)")
	qosBurst := flag.Int64("qos-burst", 0, "per-tenant token-bucket burst bytes (0 = default sizing; needs QoS on)")
	flag.Parse()

	// Validate up front: a daemon that accepts nonsense flags fails late (a
	// zero-capacity device, a server that rejects every connection) or
	// silently misbehaves. Usage errors exit 2 before any resource exists.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ndsd: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *tcpAddr == "" && *unixPath == "" {
		usageErr("at least one of -tcp or -unix is required")
	}
	if *capacity <= 0 {
		usageErr("-capacity %d: the flash array needs a positive byte size", *capacity)
	}
	if *cache < 0 {
		usageErr("-cache %d: cache bytes cannot be negative (0 disables)", *cache)
	}
	if *prefetch < 0 {
		usageErr("-prefetch %d: prefetch depth cannot be negative (0 disables)", *prefetch)
	}
	if *prefetch > 0 && *cache == 0 {
		usageErr("-prefetch %d needs -cache > 0 (prefetch warms the block cache)", *prefetch)
	}
	if *maxConns <= 0 {
		usageErr("-maxconns %d: the server needs at least one connection slot", *maxConns)
	}
	if *inflight <= 0 {
		usageErr("-inflight %d: each connection needs at least one in-flight request", *inflight)
	}
	if *readTimeout <= 0 || *writeTimeout <= 0 {
		usageErr("-readtimeout %v / -writetimeout %v: deadlines must be positive", *readTimeout, *writeTimeout)
	}
	if *drainTimeout <= 0 {
		usageErr("-draintimeout %v: the drain bound must be positive", *drainTimeout)
	}
	if *qosWeight < 0 || *qosRate < 0 || *qosBurst < 0 {
		usageErr("-qos-weight-default %v / -qos-rate %v / -qos-burst %d: QoS parameters cannot be negative",
			*qosWeight, *qosRate, *qosBurst)
	}
	if *qosBurst > 0 && *qosWeight == 0 && *qosRate == 0 {
		usageErr("-qos-burst %d needs QoS enabled (-qos-weight-default or -qos-rate)", *qosBurst)
	}
	m := nds.ModeHardware
	switch *mode {
	case "hardware", "hw":
	case "software", "sw":
		m = nds.ModeSoftware
	default:
		usageErr("unknown -mode %q (hardware or software)", *mode)
	}

	opts := nds.Options{
		Mode:            m,
		CapacityHint:    *capacity,
		CacheBytes:      *cache,
		PrefetchDepth:   *prefetch,
		DisablePushdown: !*pushdown,
	}
	if *qosWeight > 0 || *qosRate > 0 {
		opts.TenantQoS = &nds.TenantQoS{
			Weight:          *qosWeight,
			RateBytesPerSec: *qosRate,
			Burst:           *qosBurst,
		}
	}
	dev, err := nds.Open(opts)
	if err != nil {
		log.Fatalf("ndsd: open device: %v", err)
	}

	cfg := ndsserver.Config{
		MaxConns:     *maxConns,
		MaxInFlight:  *inflight,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := ndsserver.New(dev, cfg)

	serveErr := make(chan error, 2)
	var cleanups []func()
	listen := func(network, addr string) {
		l, err := net.Listen(network, addr)
		if err != nil {
			log.Fatalf("ndsd: listen %s %s: %v", network, addr, err)
		}
		log.Printf("ndsd: listening on %s %s (%s NDS, %d B)", network, l.Addr(), m, *capacity)
		go func() { serveErr <- srv.Serve(l) }()
	}
	if *unixPath != "" {
		// A stale socket file from an unclean previous exit blocks bind;
		// remove it. A live daemon on the same path is also removed — that
		// is the operator's mistake, same as any pidfile-less daemon.
		os.Remove(*unixPath)
		listen("unix", *unixPath)
		cleanups = append(cleanups, func() { os.Remove(*unixPath) })
	}
	if *tcpAddr != "" {
		listen("tcp", *tcpAddr)
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("ndsd: %v: draining (limit %v)", sig, *drainTimeout)
	case err := <-serveErr:
		log.Printf("ndsd: serve: %v: draining", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		log.Printf("ndsd: second signal: forcing exit")
		cancel()
	}()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ndsd: drain incomplete: %v", err)
		code = 1
	}
	if err := dev.Close(); err != nil {
		log.Printf("ndsd: device close: %v", err)
		code = 1
	}
	for _, f := range cleanups {
		f()
	}
	st := srv.Stats()
	log.Printf("ndsd: drained cleanly: %d conns served, %d requests, %d rejected, %d dropped",
		st.Accepted, st.Requests, st.Rejected, st.Drops)
	os.Exit(code)
}
