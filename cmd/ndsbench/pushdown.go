package main

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"nds"
)

// The pushdown benchmark: the same selective query executed as
// read-then-filter and as an in-storage scan, on both NDS implementations.
// Hardware NDS runs the operator on the controller — slower compute, but only
// the matches cross the interconnect; software NDS filters at host speed but
// ships every raw page first. The selectivity sweep shows where each side of
// the [P2] tradeoff wins.

const (
	pdDim   = 1024            // 1024x1024 space of 8-byte elements = 8 MiB
	pdTile  = 256             // scanned partition edge
	pdTiles = 16              // (pdDim/pdTile)^2 disjoint tiles
	pdTileB = pdTile * pdTile * 8
)

// pdSetup builds a device with the benchmark's fill: element j holds j%1000,
// so the predicate [0, m-1] selects exactly m/10 percent of any aligned tile.
func pdSetup(mode nds.Mode, cacheBytes int64, prefetch int) (*nds.Device, *nds.Space, error) {
	d, err := nds.Open(nds.Options{
		Mode:          mode,
		CapacityHint:  32 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	})
	if err != nil {
		return nil, nil, err
	}
	id, err := d.CreateSpace(8, []int64{pdDim, pdDim})
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	v, err := d.OpenSpace(id, []int64{pdDim, pdDim})
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	data := make([]byte, pdDim*pdDim*8)
	for j := 0; j < pdDim*pdDim; j++ {
		binary.LittleEndian.PutUint64(data[8*j:], uint64(j%1000))
	}
	if _, err := v.Write([]int64{0, 0}, []int64{pdDim, pdDim}, data); err != nil {
		v.Close()
		d.Close()
		return nil, nil, err
	}
	return d, v, nil
}

// runPushdown prints the selectivity sweep: per mode and selectivity, the
// interconnect bytes and simulated time of scanning every tile via pushdown
// versus reading every tile and filtering on the host.
func runPushdown(cacheBytes int64, prefetch int) {
	header("In-storage compute pushdown: scan vs read-then-filter")
	fmt.Printf("%d MiB space, %d %dx%d tiles, predicate [0,m) over values 0..999\n\n",
		pdDim*pdDim*8>>20, pdTiles, pdTile, pdTile)
	fmt.Printf("%-8s %11s %14s %14s %9s %12s %12s\n",
		"mode", "selectivity", "read link B", "scan link B", "savings", "read sim", "scan sim")
	for _, mode := range []nds.Mode{nds.ModeHardware, nds.ModeSoftware} {
		for _, sel := range []struct {
			label string
			hi    uint64
		}{
			{"0.1%", 0}, {"1%", 9}, {"10%", 99},
		} {
			d, v, err := pdSetup(mode, cacheBytes, prefetch)
			if err != nil {
				fatalf("pushdown: %v", err)
			}
			var readRaw, scanRaw int64
			var readSim, scanSim int64
			var matches int64
			for t := int64(0); t < pdTiles; t++ {
				coord := []int64{t / (pdDim / pdTile), t % (pdDim / pdTile)}
				_, rst, err := v.Read(coord, []int64{pdTile, pdTile})
				if err != nil {
					fatalf("pushdown read: %v", err)
				}
				res, sst, err := v.Scan(coord, []int64{pdTile, pdTile},
					nds.ScanQuery{Pred: nds.Predicate{Lo: 0, Hi: sel.hi}})
				if err != nil {
					fatalf("pushdown scan: %v", err)
				}
				readRaw += rst.RawBytes
				scanRaw += sst.RawBytes
				readSim += rst.Elapsed.Nanoseconds()
				scanSim += sst.Elapsed.Nanoseconds()
				matches += res.Total
			}
			fmt.Printf("%-8s %11s %14d %14d %8.1fx %10.0fus %10.0fus\n",
				mode, sel.label, readRaw, scanRaw,
				float64(readRaw)/float64(scanRaw),
				float64(readSim)/1e3, float64(scanSim)/1e3)
			v.Close()
			d.Close()
		}
	}
	fmt.Println("\nsavings = interconnect bytes a read-then-filter moves / bytes the pushdown moves")
	fmt.Println("hardware NDS trades slower controller compute for the link; software NDS cannot save link bytes")
}

// measurePushdown is the -json / -benchcompare point: clients concurrently
// scan disjoint tiles of the shared space at 1% selectivity on hardware NDS.
// SimMBps rates the bytes scanned (the device-side work) against simulated
// time; SavingsX is the deterministic interconnect reduction versus
// read-then-filter.
func measurePushdown(clients int, cacheBytes int64, prefetch int) (benchPoint, error) {
	d, w, err := pdSetup(nds.ModeHardware, cacheBytes, prefetch)
	if err != nil {
		return benchPoint{}, err
	}
	defer d.Close()
	if err := w.Close(); err != nil {
		return benchPoint{}, err
	}
	id := w.ID()
	views := make([]*nds.Space, clients)
	for i := range views {
		if views[i], err = d.OpenSpace(id, []int64{pdDim, pdDim}); err != nil {
			return benchPoint{}, err
		}
	}
	defer func() {
		for _, v := range views {
			v.Close()
		}
	}()

	var phaseRaw atomic.Int64
	phase := func() error {
		phaseRaw.Store(0)
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := pdTiles / clients
		if per == 0 {
			per = 1
		}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				coord := make([]int64, 2)
				sub := []int64{pdTile, pdTile}
				q := nds.ScanQuery{Pred: nds.Predicate{Lo: 0, Hi: 9}}
				raw := int64(0)
				for k := 0; k < per; k++ {
					tile := int64((c*per + k) % pdTiles)
					coord[0], coord[1] = tile/(pdDim/pdTile), tile%(pdDim/pdTile)
					_, st, err := views[c].Scan(coord, sub, q)
					if err != nil {
						errs <- err
						return
					}
					raw += st.RawBytes
				}
				phaseRaw.Add(raw)
			}(c)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	pt, err := timedPhases("pushdown", clients, pdTiles*pdTileB, phase, d)
	if err != nil {
		return benchPoint{}, err
	}
	pt.GC = nil // scans never collect
	// The scans' link bytes are deterministic (same tiles, same matches every
	// phase), so one phase's accumulation rates the whole run.
	if raw := phaseRaw.Load(); raw > 0 {
		pt.SavingsX = float64(pdTiles*pdTileB) / float64(raw)
	}
	// The reduce-side figure: a top-16 reduce returns one fixed-size result
	// page per tile, so its savings dwarf the scan's. One sequential pass is
	// enough — the result volume is deterministic.
	var topkRaw int64
	for t := int64(0); t < pdTiles; t++ {
		coord := []int64{t / (pdDim / pdTile), t % (pdDim / pdTile)}
		_, st, err := views[0].Reduce(coord, []int64{pdTile, pdTile},
			nds.ReduceQuery{Kind: nds.ReduceTopK, K: 16})
		if err != nil {
			return benchPoint{}, err
		}
		topkRaw += st.RawBytes
	}
	if topkRaw > 0 {
		pt.TopKSavingsX = float64(pdTiles*pdTileB) / float64(topkRaw)
	}
	return pt, nil
}
