package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nds"
	"nds/internal/ndsclient"
	"nds/internal/ndsserver"
)

// The network workload reads 64x64 float32 tiles of a shared 1024x1024 space
// — the same shape as the in-process concurrent-client benchmark, so the two
// measure the same device work with and without the wire in between.
const (
	netDim     = 1024
	netTiles   = 256 // 16x16 grid
	netTileB   = 64 * 64 * 4
	burstScale = 4 // burst phases run the middle third at this multiple
)

// netOpts configures one open-loop run.
type netOpts struct {
	Conns   int
	Rate    float64 // aggregate target, ops/s
	Dur     time.Duration
	Arrival string  // "poisson" or "fixed"
	ZipfS   float64 // >1 skews tile choice Zipfian; otherwise uniform
	Burst   bool    // middle third of Dur at burstScale x Rate
}

// netResult is one run's outcome. Latencies are measured from each request's
// *scheduled* arrival time, not its send time, so queueing delay behind a
// slow response is charged to the server (no coordinated omission).
type netResult struct {
	Sent, Done, Errors   int64
	Elapsed              time.Duration
	AchievedRps          float64
	MeanNs               float64
	P50Ns, P99Ns, P999Ns float64
}

// runNetLoad drives an open-loop load against a live server: each connection
// schedules arrivals at Rate/Conns ops/s (Poisson or fixed-interval),
// dispatches every request at its scheduled time regardless of how many are
// still outstanding, and records completion latency from the schedule.
func runNetLoad(addr string, o netOpts) (netResult, error) {
	if o.Arrival != "poisson" && o.Arrival != "fixed" {
		return netResult{}, fmt.Errorf("unknown arrival process %q (poisson or fixed)", o.Arrival)
	}
	clients := make([]*ndsclient.Client, o.Conns)
	views := make([]uint32, o.Conns)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	var space uint32
	for i := range clients {
		c, err := ndsclient.Dial(addr)
		if err != nil {
			return netResult{}, fmt.Errorf("conn %d: %w", i, err)
		}
		clients[i] = c
		if i == 0 {
			if space, views[0], err = c.CreateSpace(4, []int64{netDim, netDim}); err != nil {
				return netResult{}, err
			}
			continue
		}
		if views[i], err = c.OpenView(space, 4, []int64{netDim, netDim}); err != nil {
			return netResult{}, fmt.Errorf("conn %d: %w", i, err)
		}
	}
	// Warm every connection's path (frame buffers, device arenas) off the
	// clock.
	for i, c := range clients {
		if _, err := c.Read(views[i], []int64{0, 0}, []int64{64, 64}); err != nil {
			return netResult{}, fmt.Errorf("warmup conn %d: %w", i, err)
		}
	}

	var (
		sent, errs atomic.Int64
		latMu      sync.Mutex
		lats       []time.Duration
		wg         sync.WaitGroup
	)
	start := time.Now()
	perConn := o.Rate / float64(o.Conns)
	for i := range clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, view := clients[ci], views[ci]
			rng := rand.New(rand.NewSource(int64(9000 + ci)))
			var zipf *rand.Zipf
			if o.ZipfS > 1 {
				zipf = rand.NewZipf(rng, o.ZipfS, 1, netTiles-1)
			}
			local := make([]time.Duration, 0, int(perConn*o.Dur.Seconds())+16)
			var localMu sync.Mutex
			var reqWG sync.WaitGroup
			for next := time.Duration(0); next < o.Dur; {
				rate := perConn
				if o.Burst && next >= o.Dur/3 && next < 2*o.Dur/3 {
					rate *= burstScale
				}
				sched := start.Add(next)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				var tile int64
				if zipf != nil {
					tile = int64(zipf.Uint64())
				} else {
					tile = rng.Int63n(netTiles)
				}
				sent.Add(1)
				reqWG.Add(1)
				// Open loop: the arrival schedule never waits for responses,
				// so a stalled server accumulates latency, not a lighter load.
				go func(sched time.Time, tile int64) {
					defer reqWG.Done()
					_, err := c.Read(view, []int64{tile / 16, tile % 16}, []int64{64, 64})
					lat := time.Since(sched)
					if err != nil {
						errs.Add(1)
						return
					}
					localMu.Lock()
					local = append(local, lat)
					localMu.Unlock()
				}(sched, tile)
				if o.Arrival == "fixed" {
					next += time.Duration(float64(time.Second) / rate)
				} else {
					next += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				}
			}
			reqWG.Wait()
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := netResult{
		Sent:    sent.Load(),
		Done:    int64(len(lats)),
		Errors:  errs.Load(),
		Elapsed: elapsed,
	}
	if len(lats) == 0 {
		return res, fmt.Errorf("no requests completed (%d errors)", res.Errors)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	pct := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))])
	}
	res.AchievedRps = float64(res.Done) / elapsed.Seconds()
	res.MeanNs = float64(sum) / float64(len(lats))
	res.P50Ns = pct(0.50)
	res.P99Ns = pct(0.99)
	res.P999Ns = pct(0.999)
	return res, nil
}

// runNet is the -net CLI mode: load an external ndsd (CI smoke, manual
// experiments) and print the tail-latency report.
func runNet(addr string, o netOpts) {
	header(fmt.Sprintf("Open-loop network load: %s", addr))
	fmt.Printf("conns %d  target %.0f ops/s (%s)  zipf %.2f  burst %v  dur %v\n",
		o.Conns, o.Rate, o.Arrival, o.ZipfS, o.Burst, o.Dur)
	res, err := runNetLoad(addr, o)
	if err != nil {
		fatalf("net load: %v", err)
	}
	fmt.Printf("sent %d  done %d  errors %d  achieved %.1f ops/s\n",
		res.Sent, res.Done, res.Errors, res.AchievedRps)
	fmt.Printf("latency us: mean %.0f  p50 %.0f  p99 %.0f  p999 %.0f\n",
		res.MeanNs/1e3, res.P50Ns/1e3, res.P99Ns/1e3, res.P999Ns/1e3)
	if res.Errors > 0 {
		fatalf("net load: %d requests failed", res.Errors)
	}
}

// streamOpts configures the -stream benchmark.
type streamOpts struct {
	Window    int
	ChunkRows int64
}

// The streaming benchmark fetches a 16 MiB float32 partition — large enough
// that one synchronous nds_read per frame leaves the device idle between
// round trips, small enough to run in CI.
const (
	streamRows = 4096
	streamCols = 1024
	streamElem = 4
)

// runStream is the -stream CLI mode: measure how much a single connection
// gains from the windowed ReadStream pipeline over one whole-partition read.
// With -net it targets an external server; otherwise it self-hosts one on a
// private unix socket.
func runStream(addr string, o streamOpts) {
	cleanup := func() {}
	if addr == "" {
		dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 64 << 20})
		if err != nil {
			fatalf("stream: %v", err)
		}
		srv := ndsserver.New(dev, ndsserver.Config{})
		dir, err := os.MkdirTemp("", "ndsbench-stream")
		if err != nil {
			fatalf("stream: %v", err)
		}
		l, err := net.Listen("unix", filepath.Join(dir, "nds.sock"))
		if err != nil {
			os.RemoveAll(dir)
			fatalf("stream: %v", err)
		}
		addr = "unix:" + l.Addr().String()
		go srv.Serve(l)
		cleanup = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			dev.Close()
			os.RemoveAll(dir)
		}
	}
	defer cleanup()

	c, err := ndsclient.Dial(addr)
	if err != nil {
		fatalf("stream: %v", err)
	}
	defer c.Close()
	_, view, err := c.CreateSpace(streamElem, []int64{streamRows, streamCols})
	if err != nil {
		fatalf("stream: %v", err)
	}
	total := streamRows * streamCols * streamElem
	data := make([]byte, total)
	rng := rand.New(rand.NewSource(42))
	rng.Read(data)
	if err := c.Write(view, []int64{0, 0}, []int64{streamRows, streamCols}, data); err != nil {
		fatalf("stream: %v", err)
	}

	header("Single-connection streaming read")
	fmt.Printf("partition %dx%d x%dB = %.1f MiB  window %d\n",
		streamRows, streamCols, streamElem, float64(total)/(1<<20), o.Window)

	coord, sub := []int64{0, 0}, []int64{streamRows, streamCols}
	const iters = 3
	var singleBest, streamBest time.Duration
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		got, err := c.Read(view, coord, sub)
		d := time.Since(t0)
		if err != nil {
			fatalf("stream: single read: %v", err)
		}
		if i == 0 && !bytes.Equal(got, data) {
			fatalf("stream: single read returned wrong bytes")
		}
		if singleBest == 0 || d < singleBest {
			singleBest = d
		}
	}
	var streamed bytes.Buffer
	for i := 0; i < iters; i++ {
		streamed.Reset()
		verify := i == 0
		t0 := time.Now()
		n, err := c.ReadStream(view, coord, sub,
			ndsclient.StreamOpts{Window: o.Window, ChunkRows: o.ChunkRows},
			func(off int64, chunk []byte) error {
				if verify {
					streamed.Write(chunk)
				}
				return nil
			})
		d := time.Since(t0)
		if err != nil {
			fatalf("stream: %v", err)
		}
		if n != int64(total) {
			fatalf("stream: delivered %d bytes, want %d", n, total)
		}
		if verify && !bytes.Equal(streamed.Bytes(), data) {
			fatalf("stream: streamed bytes differ from written data")
		}
		if streamBest == 0 || d < streamBest {
			streamBest = d
		}
	}
	mbps := func(d time.Duration) float64 { return float64(total) / d.Seconds() / 1e6 }
	fmt.Printf("whole-partition read: %8v  %7.1f MB/s\n", singleBest.Round(time.Microsecond), mbps(singleBest))
	fmt.Printf("windowed ReadStream:  %8v  %7.1f MB/s  (%.2fx)\n",
		streamBest.Round(time.Microsecond), mbps(streamBest),
		float64(singleBest)/float64(streamBest))
}

// measureNetPoint self-hosts an ndsserver on a private unix socket and runs
// the open-loop driver against it, so BENCH_<rev>.json carries reproducible
// tail-latency points and -benchcompare can gate p99 like any other metric.
func measureNetPoint(workload string, conns int, cacheBytes int64, prefetch int) (benchPoint, error) {
	// The in-process workloads measured before this point leave a ballooned
	// heap behind; without a forced collection, runtime GC assists starve the
	// open-loop scheduler and the tail latencies measure the Go runtime, not
	// the server.
	debug.FreeOSMemory()
	dev, err := nds.Open(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  16 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	})
	if err != nil {
		return benchPoint{}, err
	}
	defer dev.Close()
	srv := ndsserver.New(dev, ndsserver.Config{MaxConns: conns + 8})
	dir, err := os.MkdirTemp("", "ndsbench-net")
	if err != nil {
		return benchPoint{}, err
	}
	defer os.RemoveAll(dir)
	l, err := net.Listen("unix", filepath.Join(dir, "nds.sock"))
	if err != nil {
		return benchPoint{}, err
	}
	addr := "unix:" + l.Addr().String()
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// 1000 ops/s sits well below loopback saturation on small CI machines:
	// the p99 the snapshot gates is service latency plus scheduler jitter,
	// not queueing collapse, so -benchcompare stays stable run to run.
	o := netOpts{
		Conns:   conns,
		Rate:    1000,
		Dur:     2 * time.Second,
		Arrival: "poisson",
		ZipfS:   1.1,
		Burst:   workload == "net-burst",
	}
	res, err := runNetLoad(addr, o)
	if err != nil {
		return benchPoint{}, err
	}
	if res.Errors > 0 {
		return benchPoint{}, fmt.Errorf("%d requests failed against the self-hosted server", res.Errors)
	}
	return benchPoint{
		Workload:    workload,
		Clients:     conns,
		Iterations:  int(res.Done),
		WallNsOp:    res.MeanNs,
		RateRps:     o.Rate,
		AchievedRps: res.AchievedRps,
		P50Ns:       res.P50Ns,
		P99Ns:       res.P99Ns,
		P999Ns:      res.P999Ns,
	}, nil
}
