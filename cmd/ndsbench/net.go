package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nds"
	"nds/internal/ndsclient"
	"nds/internal/ndsserver"
)

// The network workload reads 64x64 float32 tiles of a shared 1024x1024 space
// — the same shape as the in-process concurrent-client benchmark, so the two
// measure the same device work with and without the wire in between.
const (
	netDim     = 1024
	netTiles   = 256 // 16x16 grid
	netTileB   = 64 * 64 * 4
	burstScale = 4 // burst phases run the middle third at this multiple
)

// netOpts configures one open-loop run.
type netOpts struct {
	Conns   int
	Rate    float64 // aggregate target, ops/s
	Dur     time.Duration
	Arrival string  // "poisson" or "fixed"
	ZipfS   float64 // >1 skews tile choice Zipfian; otherwise uniform
	Burst   bool    // middle third of Dur at burstScale x Rate
	// MaxOutstanding bounds unfinished requests per connection; arrivals
	// beyond the bound are shed (counted, not sent). Zero is unbounded — the
	// pure open loop. The antagonist benchmark bounds its flood so a
	// throttled tenant's backlog (and drain time) stays finite.
	MaxOutstanding int
}

// netResult is one run's outcome. Latencies are measured from each request's
// *scheduled* arrival time, not its send time, so queueing delay behind a
// slow response is charged to the server (no coordinated omission).
type netResult struct {
	Sent, Done, Errors   int64
	Shed                 int64 // arrivals dropped by MaxOutstanding
	Elapsed              time.Duration
	AchievedRps          float64
	MeanNs               float64
	P50Ns, P99Ns, P999Ns float64
}

// runNetLoad drives an open-loop load against a live server: each connection
// schedules arrivals at Rate/Conns ops/s (Poisson or fixed-interval),
// dispatches every request at its scheduled time regardless of how many are
// still outstanding, and records completion latency from the schedule.
func runNetLoad(addr string, o netOpts) (netResult, error) {
	_, clients, views, err := dialNetGroup(addr, o.Conns)
	if err != nil {
		return netResult{}, err
	}
	defer closeClients(clients)
	return driveOpenLoop(clients, views, o, 9000)
}

// dialNetGroup dials n connections; the first creates a fresh netDim² float32
// space and the rest open views of it, so the group is one tenant with its
// own space — the antagonist benchmark dials two groups against one server.
// Every connection's path (frame buffers, device arenas) is warmed off the
// clock. On error the already-dialed connections are closed.
func dialNetGroup(addr string, n int) (space uint32, clients []*ndsclient.Client, views []uint32, err error) {
	clients = make([]*ndsclient.Client, 0, n)
	views = make([]uint32, n)
	defer func() {
		if err != nil {
			closeClients(clients)
			clients = nil
		}
	}()
	for i := 0; i < n; i++ {
		c, derr := ndsclient.Dial(addr)
		if derr != nil {
			return 0, clients, nil, fmt.Errorf("conn %d: %w", i, derr)
		}
		clients = append(clients, c)
		if i == 0 {
			if space, views[0], err = c.CreateSpace(4, []int64{netDim, netDim}); err != nil {
				return 0, clients, nil, err
			}
			continue
		}
		if views[i], err = c.OpenView(space, 4, []int64{netDim, netDim}); err != nil {
			return 0, clients, nil, fmt.Errorf("conn %d: %w", i, err)
		}
	}
	for i, c := range clients {
		if _, err = c.Read(views[i], []int64{0, 0}, []int64{64, 64}); err != nil {
			return 0, clients, nil, fmt.Errorf("warmup conn %d: %w", i, err)
		}
	}
	return space, clients, views, nil
}

func closeClients(clients []*ndsclient.Client) {
	for _, c := range clients {
		if c != nil {
			c.Close()
		}
	}
}

// driveOpenLoop runs the open-loop arrival schedule over an already-dialed
// connection group and reduces the latencies to percentiles. seedBase keeps
// concurrent groups (victim, antagonist) on disjoint deterministic streams.
func driveOpenLoop(clients []*ndsclient.Client, views []uint32, o netOpts, seedBase int64) (netResult, error) {
	if o.Arrival != "poisson" && o.Arrival != "fixed" {
		return netResult{}, fmt.Errorf("unknown arrival process %q (poisson or fixed)", o.Arrival)
	}
	var (
		sent, errs, shed atomic.Int64
		latMu            sync.Mutex
		lats             []time.Duration
		wg               sync.WaitGroup
	)
	start := time.Now()
	perConn := o.Rate / float64(len(clients))
	for i := range clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, view := clients[ci], views[ci]
			rng := rand.New(rand.NewSource(seedBase + int64(ci)))
			var zipf *rand.Zipf
			if o.ZipfS > 1 {
				zipf = rand.NewZipf(rng, o.ZipfS, 1, netTiles-1)
			}
			var sem chan struct{}
			if o.MaxOutstanding > 0 {
				sem = make(chan struct{}, o.MaxOutstanding)
			}
			local := make([]time.Duration, 0, int(perConn*o.Dur.Seconds())+16)
			var localMu sync.Mutex
			var reqWG sync.WaitGroup
			for next := time.Duration(0); next < o.Dur; {
				rate := perConn
				if o.Burst && next >= o.Dur/3 && next < 2*o.Dur/3 {
					rate *= burstScale
				}
				sched := start.Add(next)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				if o.Arrival == "fixed" {
					next += time.Duration(float64(time.Second) / rate)
				} else {
					next += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				}
				var tile int64
				if zipf != nil {
					tile = int64(zipf.Uint64())
				} else {
					tile = rng.Int63n(netTiles)
				}
				if sem != nil {
					select {
					case sem <- struct{}{}:
					default:
						shed.Add(1) // queue bound hit: shed, keep the schedule
						continue
					}
				}
				sent.Add(1)
				reqWG.Add(1)
				// Open loop: the arrival schedule never waits for responses,
				// so a stalled server accumulates latency, not a lighter load.
				go func(sched time.Time, tile int64) {
					defer reqWG.Done()
					_, err := c.Read(view, []int64{tile / 16, tile % 16}, []int64{64, 64})
					if sem != nil {
						<-sem
					}
					lat := time.Since(sched)
					if err != nil {
						errs.Add(1)
						return
					}
					localMu.Lock()
					local = append(local, lat)
					localMu.Unlock()
				}(sched, tile)
			}
			reqWG.Wait()
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := netResult{
		Sent:    sent.Load(),
		Done:    int64(len(lats)),
		Errors:  errs.Load(),
		Shed:    shed.Load(),
		Elapsed: elapsed,
	}
	if len(lats) == 0 {
		return res, fmt.Errorf("no requests completed (%d errors)", res.Errors)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	pct := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))])
	}
	res.AchievedRps = float64(res.Done) / elapsed.Seconds()
	res.MeanNs = float64(sum) / float64(len(lats))
	res.P50Ns = pct(0.50)
	res.P99Ns = pct(0.99)
	res.P999Ns = pct(0.999)
	return res, nil
}

// runNet is the -net CLI mode: load an external ndsd (CI smoke, manual
// experiments) and print the tail-latency report.
func runNet(addr string, o netOpts) {
	header(fmt.Sprintf("Open-loop network load: %s", addr))
	fmt.Printf("conns %d  target %.0f ops/s (%s)  zipf %.2f  burst %v  dur %v\n",
		o.Conns, o.Rate, o.Arrival, o.ZipfS, o.Burst, o.Dur)
	res, err := runNetLoad(addr, o)
	if err != nil {
		fatalf("net load: %v", err)
	}
	fmt.Printf("sent %d  done %d  errors %d  achieved %.1f ops/s\n",
		res.Sent, res.Done, res.Errors, res.AchievedRps)
	fmt.Printf("latency us: mean %.0f  p50 %.0f  p99 %.0f  p999 %.0f\n",
		res.MeanNs/1e3, res.P50Ns/1e3, res.P99Ns/1e3, res.P999Ns/1e3)
	if res.Errors > 0 {
		fatalf("net load: %d requests failed", res.Errors)
	}
}

// streamOpts configures the -stream benchmark.
type streamOpts struct {
	Window    int
	ChunkRows int64
}

// The streaming benchmark fetches a 16 MiB float32 partition — large enough
// that one synchronous nds_read per frame leaves the device idle between
// round trips, small enough to run in CI.
const (
	streamRows = 4096
	streamCols = 1024
	streamElem = 4
)

// selfHostedServer opens a device with the given options and serves it on a
// private unix socket, so benchmarks that are not pointed at an external ndsd
// still measure the full wire path. The returned cleanup drains the server,
// closes the device, and removes the socket directory.
func selfHostedServer(opts nds.Options, cfg ndsserver.Config, tag string) (dev *nds.Device, addr string, cleanup func(), err error) {
	dev, err = nds.Open(opts)
	if err != nil {
		return nil, "", nil, err
	}
	srv := ndsserver.New(dev, cfg)
	dir, err := os.MkdirTemp("", tag)
	if err != nil {
		dev.Close()
		return nil, "", nil, err
	}
	l, err := net.Listen("unix", filepath.Join(dir, "nds.sock"))
	if err != nil {
		dev.Close()
		os.RemoveAll(dir)
		return nil, "", nil, err
	}
	addr = "unix:" + l.Addr().String()
	go srv.Serve(l)
	cleanup = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		dev.Close()
		os.RemoveAll(dir)
	}
	return dev, addr, cleanup, nil
}

// streamResult is one stream-vs-single-read measurement: best-of-iters wall
// time for a whole-partition read and for the windowed ReadStream of the same
// bytes (both verified against the written data on their first iteration).
type streamResult struct {
	Bytes      int64
	Iters      int
	SingleBest time.Duration
	StreamBest time.Duration
}

const streamIters = 3

// measureStream writes the 16 MiB benchmark partition over one connection and
// times whole-partition reads against the windowed stream.
func measureStream(addr string, o streamOpts) (streamResult, error) {
	c, err := ndsclient.Dial(addr)
	if err != nil {
		return streamResult{}, err
	}
	defer c.Close()
	_, view, err := c.CreateSpace(streamElem, []int64{streamRows, streamCols})
	if err != nil {
		return streamResult{}, err
	}
	total := streamRows * streamCols * streamElem
	data := make([]byte, total)
	rng := rand.New(rand.NewSource(42))
	rng.Read(data)
	if err := c.Write(view, []int64{0, 0}, []int64{streamRows, streamCols}, data); err != nil {
		return streamResult{}, err
	}

	coord, sub := []int64{0, 0}, []int64{streamRows, streamCols}
	res := streamResult{Bytes: int64(total), Iters: streamIters}
	for i := 0; i < streamIters; i++ {
		t0 := time.Now()
		got, err := c.Read(view, coord, sub)
		d := time.Since(t0)
		if err != nil {
			return streamResult{}, fmt.Errorf("single read: %w", err)
		}
		if i == 0 && !bytes.Equal(got, data) {
			return streamResult{}, fmt.Errorf("single read returned wrong bytes")
		}
		if res.SingleBest == 0 || d < res.SingleBest {
			res.SingleBest = d
		}
	}
	var streamed bytes.Buffer
	for i := 0; i < streamIters; i++ {
		streamed.Reset()
		verify := i == 0
		t0 := time.Now()
		n, err := c.ReadStream(view, coord, sub,
			ndsclient.StreamOpts{Window: o.Window, ChunkRows: o.ChunkRows},
			func(off int64, chunk []byte) error {
				if verify {
					streamed.Write(chunk)
				}
				return nil
			})
		d := time.Since(t0)
		if err != nil {
			return streamResult{}, err
		}
		if n != int64(total) {
			return streamResult{}, fmt.Errorf("delivered %d bytes, want %d", n, total)
		}
		if verify && !bytes.Equal(streamed.Bytes(), data) {
			return streamResult{}, fmt.Errorf("streamed bytes differ from written data")
		}
		if res.StreamBest == 0 || d < res.StreamBest {
			res.StreamBest = d
		}
	}
	return res, nil
}

// runStream is the -stream CLI mode: measure how much a single connection
// gains from the windowed ReadStream pipeline over one whole-partition read.
// With -net it targets an external server; otherwise it self-hosts one on a
// private unix socket.
func runStream(addr string, o streamOpts) {
	cleanup := func() {}
	if addr == "" {
		var err error
		_, addr, cleanup, err = selfHostedServer(
			nds.Options{Mode: nds.ModeHardware, CapacityHint: 64 << 20},
			ndsserver.Config{}, "ndsbench-stream")
		if err != nil {
			fatalf("stream: %v", err)
		}
	}
	defer cleanup()

	header("Single-connection streaming read")
	fmt.Printf("partition %dx%d x%dB = %.1f MiB  window %d\n",
		streamRows, streamCols, streamElem,
		float64(streamRows*streamCols*streamElem)/(1<<20), o.Window)
	res, err := measureStream(addr, o)
	if err != nil {
		fatalf("stream: %v", err)
	}
	mbps := func(d time.Duration) float64 { return float64(res.Bytes) / d.Seconds() / 1e6 }
	fmt.Printf("whole-partition read: %8v  %7.1f MB/s\n", res.SingleBest.Round(time.Microsecond), mbps(res.SingleBest))
	fmt.Printf("windowed ReadStream:  %8v  %7.1f MB/s  (%.2fx)\n",
		res.StreamBest.Round(time.Microsecond), mbps(res.StreamBest),
		float64(res.SingleBest)/float64(res.StreamBest))
}

// measureStreamPoint self-hosts a server and measures the windowed streaming
// read, so BENCH_<rev>.json carries the streaming path as a wall-clock point
// and -benchcompare gates it instead of the result evaporating into stdout.
// WallNsOp is the best stream wall time for the whole 16 MiB partition.
func measureStreamPoint(cacheBytes int64, prefetch int) (benchPoint, error) {
	debug.FreeOSMemory()
	_, addr, cleanup, err := selfHostedServer(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  64 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	}, ndsserver.Config{}, "ndsbench-stream")
	if err != nil {
		return benchPoint{}, err
	}
	defer cleanup()
	res, err := measureStream(addr, streamOpts{Window: ndsclient.DefaultStreamWindow})
	if err != nil {
		return benchPoint{}, err
	}
	return benchPoint{
		Workload:   "stream",
		Clients:    1,
		Iterations: res.Iters,
		WallNsOp:   float64(res.StreamBest.Nanoseconds()),
	}, nil
}

// measureNetPoint self-hosts an ndsserver on a private unix socket and runs
// the open-loop driver against it, so BENCH_<rev>.json carries reproducible
// tail-latency points and -benchcompare can gate p99 like any other metric.
func measureNetPoint(workload string, conns int, cacheBytes int64, prefetch int) (benchPoint, error) {
	// The in-process workloads measured before this point leave a ballooned
	// heap behind; without a forced collection, runtime GC assists starve the
	// open-loop scheduler and the tail latencies measure the Go runtime, not
	// the server.
	debug.FreeOSMemory()
	_, addr, cleanup, err := selfHostedServer(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  16 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	}, ndsserver.Config{MaxConns: conns + 8}, "ndsbench-net")
	if err != nil {
		return benchPoint{}, err
	}
	defer cleanup()

	// 1000 ops/s sits well below loopback saturation on small CI machines:
	// the p99 the snapshot gates is service latency plus scheduler jitter,
	// not queueing collapse, so -benchcompare stays stable run to run.
	o := netOpts{
		Conns:   conns,
		Rate:    1000,
		Dur:     2 * time.Second,
		Arrival: "poisson",
		ZipfS:   1.1,
		Burst:   workload == "net-burst",
	}
	res, err := runNetLoad(addr, o)
	if err != nil {
		return benchPoint{}, err
	}
	if res.Errors > 0 {
		return benchPoint{}, fmt.Errorf("%d requests failed against the self-hosted server", res.Errors)
	}
	return benchPoint{
		Workload:    workload,
		Clients:     conns,
		Iterations:  int(res.Done),
		WallNsOp:    res.MeanNs,
		RateRps:     o.Rate,
		AchievedRps: res.AchievedRps,
		P50Ns:       res.P50Ns,
		P99Ns:       res.P99Ns,
		P999Ns:      res.P999Ns,
	}, nil
}
