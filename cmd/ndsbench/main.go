// Command ndsbench regenerates every table and figure of the paper's
// evaluation (§2 Figures 2-3, §7 Figures 9-10, the §7.3 overhead table, and
// the Table 1 inventory) on the simulated platform.
//
// Usage:
//
//	ndsbench -all               # everything at default scale
//	ndsbench -fig 9 -n 32768    # Figure 9 at the paper's matrix size
//	ndsbench -fig 2 -fig 10
//	ndsbench -table 1 -table overhead
//	ndsbench -json              # write BENCH_<rev>.json perf snapshot
//	ndsbench -json -cache 8388608        # same, with an 8 MiB block cache
//	ndsbench -benchcompare BENCH_x.json  # rerun baseline config, fail on regression
//	ndsbench -net unix:/tmp/nds.sock -conns 16 -rate 2000   # open-loop tail latency vs ndsd
//
// Larger -n values need more memory and time; -n 32768 (the paper's scale)
// runs the microbenchmarks on an 8 GiB phantom dataset.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nds/internal/experiments"
	"nds/internal/system"
	"nds/internal/workloads"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var figs, tables, sweeps multiFlag
	all := flag.Bool("all", false, "run every figure and table")
	util := flag.Bool("util", false, "print utilization reports after Figure 9 phases")
	jsonOut := flag.Bool("json", false, "measure the concurrent-client benchmark and write BENCH_<rev>.json")
	faultcheck := flag.Bool("faultcheck", false, "run a mixed workload under a seeded fault plan and verify recovery")
	pushdown := flag.Bool("pushdown", false, "selectivity sweep: in-storage scan/reduce vs read-then-filter on both NDS modes")
	kernels := flag.Bool("kernels", false, "device-resident kernel sweep: Figure-10 stage split with pushdown plus a BFS selectivity sweep")
	n := flag.Int64("n", 8192, "microbenchmark matrix dimension (paper: 32768)")
	cache := flag.Int64("cache", 0, "building-block DRAM cache size in bytes for -json (0 = off)")
	prefetch := flag.Int("prefetch", 2, "dimensional prefetch depth in blocks when -cache is set")
	benchcompare := flag.String("benchcompare", "", "rerun the benchmark with a BENCH_<rev>.json baseline's config and fail on regression")
	simtol := flag.Float64("simtol", 0.15, "allowed fractional drop in simulated MB/s for -benchcompare")
	walltol := flag.Float64("walltol", 3.0, "allowed wall ns/op growth factor for -benchcompare (loose: cross-machine noise)")
	netAddr := flag.String("net", "", "open-loop load an ndsd server at this address (unix:/path or host:port)")
	conns := flag.Int("conns", 16, "connections for -net")
	rate := flag.Float64("rate", 2000, "aggregate target arrival rate in ops/s for -net")
	dur := flag.Duration("dur", 3*time.Second, "measurement duration for -net")
	arrival := flag.String("arrival", "poisson", "arrival process for -net: poisson or fixed")
	zipf := flag.Float64("zipf", 1.1, "Zipfian skew parameter for -net tile choice (<=1 = uniform)")
	burst := flag.Bool("burst", false, "run the middle third of -net at 4x the target rate")
	stream := flag.Bool("stream", false, "single-connection streaming read benchmark (against -net addr, or a self-hosted server)")
	window := flag.Int("window", 8, "in-flight chunk window for -stream")
	chunkRows := flag.Int64("chunkrows", 0, "rows per chunk for -stream (0 = auto)")
	antagonist := flag.Bool("antagonist", false, "victim-vs-antagonist tenant isolation benchmark (self-hosted, QoS on)")
	p99bound := flag.Float64("p99bound", 2.0, "allowed victim p99 growth factor under the -antagonist flood")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit (enables mutex profiling)")
	flag.Var(&figs, "fig", "figure to regenerate (2, 3, 9, 9a, 9b, 9c, 9d, 10); repeatable")
	flag.Var(&tables, "table", "table to regenerate (1, overhead); repeatable")
	flag.Var(&sweeps, "sweep", "sensitivity sweep to run (channels, bbmult); repeatable")
	flag.Parse()

	if *all {
		figs = multiFlag{"2", "3", "9", "10"}
		tables = multiFlag{"1", "overhead"}
		sweeps = multiFlag{"channels", "bbmult"}
	}
	if len(figs) == 0 && len(tables) == 0 && len(sweeps) == 0 && !*jsonOut && !*faultcheck && *benchcompare == "" && *netAddr == "" && !*stream && !*antagonist && !*pushdown && !*kernels {
		flag.Usage()
		os.Exit(2)
	}
	stopProfiles := startProfiles(*cpuprofile, *memprofile, *mutexprofile)
	defer stopProfiles()
	if *faultcheck {
		faultCheck()
	}
	if *antagonist {
		runAntagonist(*p99bound)
	}
	if *pushdown {
		runPushdown(*cache, *prefetch)
	}
	if *kernels {
		runKernels()
	}
	if *stream {
		runStream(*netAddr, streamOpts{Window: *window, ChunkRows: *chunkRows})
	} else if *netAddr != "" {
		runNet(*netAddr, netOpts{
			Conns:   *conns,
			Rate:    *rate,
			Dur:     *dur,
			Arrival: *arrival,
			ZipfS:   *zipf,
			Burst:   *burst,
		})
	}
	if *benchcompare != "" {
		benchCompare(*benchcompare, *simtol, *walltol)
	}
	if *jsonOut {
		benchJSON(*cache, *prefetch)
	}
	for _, t := range tables {
		switch t {
		case "1":
			table1()
		case "overhead":
			overhead(*n)
		default:
			fatalf("unknown table %q", t)
		}
	}
	for _, f := range figs {
		switch f {
		case "2":
			figure2()
		case "3":
			figure3()
		case "9", "9a", "9b", "9c", "9d":
			figure9(f, *n, *util)
		case "10":
			figure10()
		default:
			fatalf("unknown figure %q", f)
		}
	}
	for _, s := range sweeps {
		switch s {
		case "channels":
			sweepChannels(*n)
		case "bbmult":
			sweepBBMult(*n)
		default:
			fatalf("unknown sweep %q", s)
		}
	}
}

func sweepChannels(n int64) {
	header(fmt.Sprintf("Sensitivity: channel count (tile fetch, N=%d)", n))
	pts, err := experiments.SweepChannels(n, []int{4, 8, 16, 32, 64})
	if err != nil {
		fatalf("sweep channels: %v", err)
	}
	fmt.Printf("%-10s %12s %12s %8s\n", "channels", "baseline", "hw-NDS", "gain")
	for _, p := range pts {
		fmt.Printf("%-10d %10.0f %12.0f %7.1fx\n", p.X, p.BaselineMB, p.HardwareMB,
			p.HardwareMB/p.BaselineMB)
	}
}

func sweepBBMult(n int64) {
	header(fmt.Sprintf("Sensitivity: building-block multiplier (hw NDS, N=%d)", n))
	pts, err := experiments.SweepBlockMultiplier(n, []int{1, 2, 4, 8})
	if err != nil {
		fatalf("sweep bbmult: %v", err)
	}
	fmt.Printf("%-6s %10s %10s %10s\n", "mult", "row MB/s", "col MB/s", "tile MB/s")
	for _, p := range pts {
		fmt.Printf("%-6d %10.0f %10.0f %10.0f\n", p.X, p.RowMB, p.ColMB, p.TileMB)
	}
}

// startProfiles arms the requested pprof outputs and returns the function
// that stops and writes them. Profiles land only on a successful exit — the
// fatalf path skips them — which is the right trade for a benchmark tool:
// a failed run's profile measures the failure, not the workload.
func startProfiles(cpu, mem, mutex string) func() {
	if mutex != "" {
		// Sample one in five contended mutex events: cheap enough to leave on
		// for a whole benchmark run, dense enough to rank convoys.
		runtime.SetMutexProfileFraction(5)
	}
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		cpuF = f
	}
	writeProfile := func(name, path string, gcFirst bool) {
		if path == "" {
			return
		}
		if gcFirst {
			runtime.GC() // fold retained-but-unswept garbage out of the heap profile
		}
		f, err := os.Create(path)
		if err != nil {
			fatalf("%s profile: %v", name, err)
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fatalf("%s profile: %v", name, err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		writeProfile("heap", mem, true)
		writeProfile("mutex", mutex, false)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ndsbench: "+format+"\n", args...)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func dimsStr(dims []int64) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprint(d)
	}
	return strings.Join(parts, "x")
}

func table1() {
	header("Table 1: workloads")
	fmt.Printf("%-9s %-18s %-18s %-24s %-5s %-8s\n",
		"Name", "Category", "Data dims (scaled)", "Kernel sub-dims", "Elem", "Shares")
	for _, s := range workloads.Catalog() {
		var subs []string
		for _, f := range s.Fetches {
			subs = append(subs, dimsStr(f.Sub))
		}
		fmt.Printf("%-9s %-18s %-18s %-24s %-5d %-8s\n",
			s.Name, s.Category, dimsStr(s.Dims), strings.Join(subs, " + "), s.Elem, s.SharedWith)
	}
}

func overhead(n int64) {
	header("Section 7.3: overhead of NDS (single-page worst case)")
	o, err := experiments.Overhead(n)
	if err != nil {
		fatalf("overhead: %v", err)
	}
	fmt.Printf("baseline latency:     %v\n", o.BaselineLatency)
	fmt.Printf("software NDS latency: %v  (+%v; paper: +41us)\n", o.SoftwareLatency, o.SoftwareDelta)
	fmt.Printf("hardware NDS latency: %v  (+%v; paper: +17us)\n", o.HardwareLatency, o.HardwareDelta)
	fmt.Printf("index footprint:      %d B for %d B data = %.4f%% (paper: <= 0.1%%)\n",
		o.IndexBytes, o.DataBytes, o.IndexOverhead*100)
}

func figure2() {
	header("Figure 2(a): 32Kx32K blocked MM, data in memory")
	a := experiments.Figure2A()
	fmt.Printf("row-store baseline: %v   sub-block: %v   ratio %.2fx (paper: 2.11x)\n",
		a.BaselineTime, a.SubBlockTime, a.Ratio)

	header("Figure 2(b): same pipeline streaming from the 32-channel SSD")
	b, err := experiments.Figure2B()
	if err != nil {
		fatalf("figure2b: %v", err)
	}
	fmt.Printf("row-store baseline: %v   sub-block: %v   ratio %.2fx\n",
		b.BaselineTime, b.SubBlockTime, b.Ratio)
	fmt.Printf("fetch-time ratio: %.2fx (paper: 1.92x)\n", b.FetchRatio)
}

func figure3() {
	header("Figure 3: processing rate / bandwidth vs matrix dimension (MB/s)")
	rows, err := experiments.Figure3()
	if err != nil {
		fatalf("figure3: %v", err)
	}
	fmt.Printf("%-8s %12s %12s %12s %12s %12s\n",
		"dim", "CUDA", "TensorCore", "NVMeoF", "SSD-internal", "consumer")
	for _, r := range rows {
		fmt.Printf("%-8d %12.0f %12.0f %12.0f %12.0f %12.0f\n",
			r.Dim, r.CUDACores, r.TensorCores, r.NVMeoF, r.InternalSSD, r.ConsumerNVMe)
	}
}

func figure9(which string, n int64, util bool) {
	printPts := func(title string, pts []experiments.Fig9Point, alt string) {
		header(title)
		if alt != "" {
			fmt.Printf("%-14s %10s %10s %10s %10s\n", "fetch", "baseline", alt, "sw-NDS", "hw-NDS")
			for _, p := range pts {
				fmt.Printf("%-14s %10.0f %10.0f %10.0f %10.0f\n",
					p.Label, p.BaselineMB, p.BaselineAlt, p.SoftwareMB, p.HardwareMB)
			}
			return
		}
		fmt.Printf("%-14s %10s %10s %10s\n", "fetch", "baseline", "sw-NDS", "hw-NDS")
		for _, p := range pts {
			fmt.Printf("%-14s %10.0f %10.0f %10.0f\n", p.Label, p.BaselineMB, p.SoftwareMB, p.HardwareMB)
		}
	}

	needRead := which == "9" || which == "9a" || which == "9b" || which == "9c"
	var plat *experiments.Platform
	var m *experiments.Matrix2D
	if needRead {
		var err error
		plat, err = experiments.NewPlatform(n * n * 8)
		if err != nil {
			fatalf("figure9 platform: %v", err)
		}
		if m, err = plat.LoadMatrix(n); err != nil {
			fatalf("figure9 load: %v", err)
		}
	}
	if which == "9" || which == "9a" {
		pts, err := experiments.Figure9A(plat, m)
		if err != nil {
			fatalf("figure9a: %v", err)
		}
		printPts(fmt.Sprintf("Figure 9(a): row-block fetch MB/s (N=%d)", n), pts, "")
	}
	if which == "9" || which == "9b" {
		pts, err := experiments.Figure9B(plat, m)
		if err != nil {
			fatalf("figure9b: %v", err)
		}
		printPts(fmt.Sprintf("Figure 9(b): column-block fetch MB/s (N=%d)", n), pts, "col-store")
	}
	if which == "9" || which == "9c" {
		pts, err := experiments.Figure9C(plat, m)
		if err != nil {
			fatalf("figure9c: %v", err)
		}
		printPts(fmt.Sprintf("Figure 9(c): submatrix fetch MB/s (N=%d)", n), pts, "")
		if util {
			header("Utilization after the Figure 9(c) sweep")
			for _, sys := range []*system.System{plat.Baseline, plat.Software, plat.Hardware} {
				fmt.Println(sys.Report(sys.Dev.NextIdle()))
			}
		}
	}
	if which == "9" || which == "9d" {
		w, err := experiments.Figure9D(n)
		if err != nil {
			fatalf("figure9d: %v", err)
		}
		header(fmt.Sprintf("Figure 9(d): write bandwidth MB/s (N=%d)", n))
		fmt.Printf("baseline: %.0f   software NDS: %.0f (%.0f%%)   hardware NDS: %.0f (%.0f%%)\n",
			w.BaselineRowMB,
			w.SoftwareMB, 100*(w.SoftwareMB/w.BaselineRowMB-1),
			w.HardwareMB, 100*(w.HardwareMB/w.BaselineRowMB-1))
		fmt.Printf("(paper: software -30%%, hardware -17%%)\n")
	}
}

func figure10() {
	header("Figure 10: end-to-end application results")
	s, err := experiments.Figure10()
	if err != nil {
		fatalf("figure10: %v", err)
	}
	fmt.Printf("%-9s %12s %8s %8s %8s %10s %10s\n",
		"workload", "baseline", "sw-NDS", "oracle", "hw-NDS", "idle-red-sw", "idle-red-hw")
	for _, r := range s.Results {
		fmt.Printf("%-9s %12v %7.2fx %7.2fx %7.2fx %9.0f%% %9.0f%%\n",
			r.Spec.Name, r.Baseline, r.SpeedupSoftware, r.SpeedupOracle, r.SpeedupHardware,
			r.IdleReductionSW*100, r.IdleReductionHW*100)
	}
	fmt.Printf("%-9s %12s %7.2fx %7.2fx %7.2fx %9.0f%% %9.0f%%\n",
		"AVERAGE", "", s.AvgSpeedupSW, s.AvgSpeedupOracle, s.AvgSpeedupHW,
		s.AvgIdleRedSW*100, s.AvgIdleRedHW*100)
	fmt.Printf("(paper: software 5.07x, hardware 5.73x, idle cuts 74%% / 76%%)\n")
}
