package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"nds"
)

// faultCheck is a reliability sanity run: a mixed workload over a device
// with a nonzero fault plan, verifying that every byte survives program
// faults, ECC retries, and block retirement, and that an identical second
// device replays the same fault history. It exits nonzero on any mismatch,
// so CI can gate on it.
func faultCheck() {
	header("Fault-injection sanity (seeded plan, mixed workload)")
	r1, clk1 := faultCheckRun()
	r2, clk2 := faultCheckRun()
	if r1 != r2 {
		fatalf("fault replay diverged:\n  run 1: %+v\n  run 2: %+v", r1, r2)
	}
	if clk1 != clk2 {
		fatalf("simulated clocks diverged: %v vs %v", clk1, clk2)
	}
	if r1.ProgramFaults == 0 || r1.ReadRetries == 0 {
		fatalf("fault plan injected nothing: %+v", r1)
	}
	if r1.ProgramRetries != r1.ProgramFaults {
		fatalf("%d program faults but %d recovered", r1.ProgramFaults, r1.ProgramRetries)
	}
	fmt.Printf("faults injected:   %d program, %d erase, %d wear-out, %d read retries\n",
		r1.ProgramFaults, r1.EraseFaults, r1.WearoutFaults, r1.ReadRetries)
	fmt.Printf("recovery:          %d programs relocated, %d blocks retired (%d pages)\n",
		r1.ProgramRetries, r1.RetiredBlocks, r1.RetiredPages)
	fmt.Printf("capacity:          %d/%d logical pages after degradation, %d in use\n",
		r1.EffectivePages, r1.MaxPages, r1.UsedPages)
	fmt.Printf("verdict:           data intact, replay deterministic\n")
}

func faultCheckRun() (nds.ReliabilityReport, int64) {
	d, err := nds.Open(nds.Options{
		Mode:         nds.ModeHardware,
		CapacityHint: 4 << 20,
		// The replay gate compares two runs' fault histories and clocks, so
		// GC must trigger at seed-deterministic points, not worker timing.
		SynchronousGC: true,
		Faults: &nds.FaultPlan{
			Seed:             2021,
			ProgramFailEvery: 12,
			EraseFailEvery:   16,
			ReadRetryEvery:   5,
		},
	})
	if err != nil {
		fatalf("open: %v", err)
	}
	const dim = 1024
	id, err := d.CreateSpace(4, []int64{dim, dim})
	if err != nil {
		fatalf("create space: %v", err)
	}
	sp, err := d.OpenSpace(id, []int64{dim, dim})
	if err != nil {
		fatalf("open space: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	image := make([]byte, dim*dim*4)
	rng.Read(image)
	if _, err := sp.Write([]int64{0, 0}, []int64{dim, dim}, image); err != nil {
		fatalf("fill write: %v", err)
	}
	const tile = 256
	for i := 0; i < 12; i++ {
		data := make([]byte, tile*tile*4)
		rng.Read(data)
		coord := []int64{rng.Int63n(dim / tile), rng.Int63n(dim / tile)}
		if _, err := sp.Write(coord, []int64{tile, tile}, data); err != nil {
			fatalf("tile write %d: %v", i, err)
		}
		for r := int64(0); r < tile; r++ {
			row := ((coord[0]*tile+r)*dim + coord[1]*tile) * 4
			copy(image[row:], data[r*tile*4:(r+1)*tile*4])
		}
	}
	got, _, err := sp.Read([]int64{0, 0}, []int64{dim, dim})
	if err != nil {
		fatalf("verify read: %v", err)
	}
	if !bytes.Equal(got, image) {
		fatalf("read-back mismatch under fault injection")
	}
	return d.Reliability(), int64(d.Now())
}
