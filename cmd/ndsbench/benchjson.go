package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"nds"
)

// benchSnapshot is the schema of BENCH_<rev>.json: one record per measured
// configuration of the concurrent-client benchmark, so successive revisions
// can be diffed to track the performance trajectory.
type benchSnapshot struct {
	Revision  string `json:"revision"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchmark string `json:"benchmark"`
	// CacheBytes/PrefetchDepth record the device configuration the snapshot
	// was taken with, so -benchcompare reruns the same configuration.
	CacheBytes    int64        `json:"cache_bytes,omitempty"`
	PrefetchDepth int          `json:"prefetch_depth,omitempty"`
	Results       []benchPoint `json:"results"`
}

type benchPoint struct {
	// Workload is "read" (disjoint tile reads of a shared space), "mixed"
	// (each client alternates tile overwrites and reads of its share of a
	// shared space), or "write" (each client overwrites its own space in
	// bands). Empty means "read": snapshots written before the workload
	// field existed measured only reads.
	Workload   string  `json:"workload,omitempty"`
	Clients    int     `json:"clients"`
	Iterations int     `json:"iterations"`
	WallNsOp   float64 `json:"wall_ns_per_op"`
	SimMBps    float64 `json:"sim_mb_per_s"`
	// Cache carries the device's cache counters after the measured phases
	// (omitted when the cache is disabled).
	Cache *nds.CacheStats `json:"cache,omitempty"`
	// GC carries the background-collection counters (runs, erases, pages
	// relocated, foreground stall time, write amplification) after the
	// measured phases; omitted for the pure-read workload, which never
	// collects.
	GC *nds.GCStats `json:"gc,omitempty"`
	// Open-loop network fields ("net"/"net-burst" workloads, self-hosted
	// ndsserver over a unix socket): target and achieved arrival rates plus
	// tail latency percentiles measured from scheduled arrival. For these
	// points WallNsOp is the mean latency and SimMBps is 0 (open-loop wall
	// timing has no deterministic simulated counterpart).
	// SavingsX is the pushdown workload's deterministic interconnect
	// reduction: the payload bytes a read-then-filter would have moved
	// divided by the bytes the in-storage scans actually moved. For the
	// kernel-* points it is the device-resident kernel's link-byte savings
	// versus its read-everything form.
	SavingsX float64 `json:"pushdown_savings_x,omitempty"`
	// TopKSavingsX is the reduce-side figure: the interconnect reduction of
	// a top-k reduce (one fixed-size result page per partition) versus
	// reading the partitions.
	TopKSavingsX float64 `json:"pushdown_topk_savings_x,omitempty"`
	RateRps  float64 `json:"rate_rps,omitempty"`
	AchievedRps float64 `json:"achieved_rps,omitempty"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	P999Ns      float64 `json:"p999_ns,omitempty"`
}

// normWorkload maps the legacy empty workload name to "read".
func normWorkload(w string) string {
	if w == "" {
		return "read"
	}
	return w
}

// revision returns the VCS commit baked into the binary by the Go toolchain,
// or "dev" for non-VCS builds (go run, test binaries).
func revision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	return "dev"
}

// benchJSON measures the concurrent tile-read workload (the same shape as
// BenchmarkConcurrentClients: 256 disjoint 64x64 tiles of a written
// 1024x1024 float32 space, split across client streams) and writes
// BENCH_<rev>.json with both the wall-clock cost per phase and the simulated
// aggregate bandwidth.
func benchJSON(cacheBytes int64, prefetch int) {
	snap := measureSnapshot(cacheBytes, prefetch)
	out := fmt.Sprintf("BENCH_%s.json", snap.Revision)
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatalf("bench json: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatalf("bench json: %v", err)
	}
	header("Benchmark snapshot")
	printSnapshot(snap)
	fmt.Printf("wrote %s\n", out)
}

func measureSnapshot(cacheBytes int64, prefetch int) benchSnapshot {
	snap := benchSnapshot{
		Revision:      revision(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Benchmark:     "ConcurrentClients",
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	}
	points := []struct {
		workload string
		clients  int
	}{
		{"read", 1}, {"read", 16}, {"read", 64},
		{"mixed", 16},
		{"write", 4}, {"write", 16},
		{"net", 16}, {"net-burst", 16},
		{"stream", 1},
		{"net-antagonist", antConns},
		{"pushdown", 16},
		{"kernel-bfs", 1}, {"kernel-knn", 1},
	}
	for _, p := range points {
		pt, err := measurePoint(p.workload, p.clients, cacheBytes, prefetch)
		if err != nil {
			fatalf("bench json (%s, clients=%d): %v", p.workload, p.clients, err)
		}
		snap.Results = append(snap.Results, pt)
	}
	return snap
}

// measurePoint dispatches one benchmark configuration to its workload
// driver.
func measurePoint(workload string, clients int, cacheBytes int64, prefetch int) (benchPoint, error) {
	switch normWorkload(workload) {
	case "read":
		return measureConcurrent(clients, cacheBytes, prefetch)
	case "mixed":
		return measureMixed(clients, cacheBytes, prefetch)
	case "write":
		return measureWrite(clients, cacheBytes, prefetch)
	case "net", "net-burst":
		return measureNetPoint(normWorkload(workload), clients, cacheBytes, prefetch)
	case "stream":
		return measureStreamPoint(cacheBytes, prefetch)
	case "net-antagonist":
		return measureAntagonistPoint(cacheBytes, prefetch)
	case "pushdown":
		return measurePushdown(clients, cacheBytes, prefetch)
	case "kernel-bfs", "kernel-knn":
		return measureKernel(normWorkload(workload))
	}
	return benchPoint{}, fmt.Errorf("unknown workload %q", workload)
}

func printSnapshot(snap benchSnapshot) {
	fmt.Printf("%-9s %-8s %12s %14s %10s %8s %10s %8s\n",
		"workload", "clients", "wall ns/op", "sim-MB/s", "cache hit%", "gc runs", "stall us", "WA")
	for _, p := range snap.Results {
		if p.P99Ns > 0 {
			fmt.Printf("%-9s %-8d %12.0f %14s   %.0f/%.0f ops/s  p50=%0.fus p99=%0.fus p999=%0.fus\n",
				normWorkload(p.Workload), p.Clients, p.WallNsOp, "-",
				p.RateRps, p.AchievedRps, p.P50Ns/1e3, p.P99Ns/1e3, p.P999Ns/1e3)
			continue
		}
		if p.SavingsX > 0 {
			topk := ""
			if p.TopKSavingsX > 0 {
				topk = fmt.Sprintf(" (top-k reduce %.0fx)", p.TopKSavingsX)
			}
			fmt.Printf("%-9s %-8d %12.0f %14.1f   %.0fx fewer interconnect bytes than read+filter%s\n",
				normWorkload(p.Workload), p.Clients, p.WallNsOp, p.SimMBps, p.SavingsX, topk)
			continue
		}
		hitPct := "-"
		if p.Cache != nil && p.Cache.Hits+p.Cache.Misses > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*float64(p.Cache.Hits)/float64(p.Cache.Hits+p.Cache.Misses))
		}
		gcRuns, stall, wa := "-", "-", "-"
		if p.GC != nil {
			gcRuns = fmt.Sprintf("%d", p.GC.Runs)
			stall = fmt.Sprintf("%.0f", float64(p.GC.StallNs)/1e3)
			wa = fmt.Sprintf("%.3f", p.GC.WriteAmp)
		}
		fmt.Printf("%-9s %-8d %12.0f %14.1f %10s %8s %10s %8s\n",
			normWorkload(p.Workload), p.Clients, p.WallNsOp, p.SimMBps, hitPct, gcRuns, stall, wa)
	}
}

// benchCompare reruns the benchmark with a committed snapshot's configuration
// and fails (exit 1) when simulated throughput regresses beyond simTol or
// wall-clock cost regresses beyond wallTol. wallTol defaults loose (3x):
// wall-clock numbers from another machine are only a smoke bound, while
// simulated throughput is deterministic and held tight.
func benchCompare(path string, simTol, wallTol float64) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("bench compare: %v", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(buf, &base); err != nil {
		fatalf("bench compare: %s: %v", path, err)
	}
	// Rerun exactly the baseline's (workload, clients) points — a baseline
	// written before the workload field existed reruns as pure reads — so
	// write and mixed throughput are gated the same way reads always were.
	cur := benchSnapshot{
		Revision:      revision(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Benchmark:     base.Benchmark,
		CacheBytes:    base.CacheBytes,
		PrefetchDepth: base.PrefetchDepth,
	}
	for _, bp := range base.Results {
		pt, err := measurePoint(bp.Workload, bp.Clients, base.CacheBytes, base.PrefetchDepth)
		if err != nil {
			fatalf("bench compare (%s, clients=%d): %v", normWorkload(bp.Workload), bp.Clients, err)
		}
		cur.Results = append(cur.Results, pt)
	}
	header(fmt.Sprintf("Benchmark comparison vs %s (rev %s)", path, base.Revision))
	printSnapshot(cur)
	failed := false
	for i, bp := range base.Results {
		cp := cur.Results[i]
		label := fmt.Sprintf("%s/clients=%d", normWorkload(bp.Workload), bp.Clients)
		wallRatio := cp.WallNsOp / bp.WallNsOp
		// Network points carry no simulated throughput (SimMBps 0); their
		// deterministic gate is replaced by the p99 wall gate below.
		if bp.SimMBps > 0 {
			simRatio := cp.SimMBps / bp.SimMBps
			fmt.Printf("%s: sim %0.1f -> %0.1f MB/s (%.2fx), wall %0.0f -> %0.0f ns/op (%.2fx)\n",
				label, bp.SimMBps, cp.SimMBps, simRatio, bp.WallNsOp, cp.WallNsOp, wallRatio)
			if simRatio < 1-simTol {
				fmt.Printf("%s: FAIL simulated throughput regressed beyond %.0f%%\n", label, simTol*100)
				failed = true
			}
		} else {
			fmt.Printf("%s: wall %0.0f -> %0.0f ns/op (%.2fx)\n",
				label, bp.WallNsOp, cp.WallNsOp, wallRatio)
		}
		if wallRatio > wallTol {
			fmt.Printf("%s: FAIL wall-clock cost regressed beyond %.1fx\n", label, wallTol)
			failed = true
		}
		if bp.SavingsX > 0 {
			// The savings ratio is deterministic (same tiles, same matches),
			// so it is held to the simulated tolerance, not the wall one.
			savRatio := cp.SavingsX / bp.SavingsX
			fmt.Printf("%s: interconnect savings %0.1fx -> %0.1fx (%.2fx)\n",
				label, bp.SavingsX, cp.SavingsX, savRatio)
			if savRatio < 1-simTol {
				fmt.Printf("%s: FAIL interconnect savings regressed beyond %.0f%%\n", label, simTol*100)
				failed = true
			}
		}
		if bp.TopKSavingsX > 0 {
			topkRatio := cp.TopKSavingsX / bp.TopKSavingsX
			fmt.Printf("%s: top-k reduce savings %0.1fx -> %0.1fx (%.2fx)\n",
				label, bp.TopKSavingsX, cp.TopKSavingsX, topkRatio)
			if topkRatio < 1-simTol {
				fmt.Printf("%s: FAIL top-k reduce savings regressed beyond %.0f%%\n", label, simTol*100)
				failed = true
			}
		}
		// The device-resident kernel points carry the acceptance floor
		// outright: at their (well under 10%) selectivities the pushdown form
		// must move at least 5x fewer interconnect bytes than reading
		// everything, independent of what the baseline snapshot recorded.
		if strings.HasPrefix(normWorkload(bp.Workload), "kernel-") && cp.SavingsX < 5 {
			fmt.Printf("%s: FAIL pushdown link-byte savings %.1fx below the 5x floor\n", label, cp.SavingsX)
			failed = true
		}
		if bp.P99Ns > 0 {
			p99Ratio := cp.P99Ns / bp.P99Ns
			fmt.Printf("%s: p99 %0.0f -> %0.0f us (%.2fx)\n",
				label, bp.P99Ns/1e3, cp.P99Ns/1e3, p99Ratio)
			if p99Ratio > wallTol {
				fmt.Printf("%s: FAIL p99 latency regressed beyond %.1fx\n", label, wallTol)
				failed = true
			}
		}
	}
	if failed {
		fatalf("bench compare: regression against %s", path)
	}
	fmt.Println("within tolerance")
}

func measureConcurrent(clients int, cacheBytes int64, prefetch int) (benchPoint, error) {
	const (
		dim   = 1024
		tiles = 256 // 16x16 grid of 64x64 tiles
		tileB = 64 * 64 * 4
	)
	d, err := nds.Open(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  16 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	})
	if err != nil {
		return benchPoint{}, err
	}
	defer d.Close()
	id, err := d.CreateSpace(4, []int64{dim, dim})
	if err != nil {
		return benchPoint{}, err
	}
	w, err := d.OpenSpace(id, []int64{dim, dim})
	if err != nil {
		return benchPoint{}, err
	}
	data := make([]byte, dim*dim*4)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := w.Write([]int64{0, 0}, []int64{dim, dim}, data); err != nil {
		return benchPoint{}, err
	}
	if err := w.Close(); err != nil {
		return benchPoint{}, err
	}

	views := make([]*nds.Space, clients)
	for i := range views {
		if views[i], err = d.OpenSpace(id, []int64{dim, dim}); err != nil {
			return benchPoint{}, err
		}
	}
	defer func() {
		for _, v := range views {
			v.Close()
		}
	}()

	phase := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, tileB)
				coord := make([]int64, 2)
				sub := []int64{64, 64}
				for k := 0; k < per; k++ {
					tile := int64(c*per + k)
					coord[0], coord[1] = tile/16, tile%16
					if _, _, err := views[c].ReadInto(coord, sub, buf); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	// Warm up once (page-plan pools, lazily allocated die arenas), then run
	// phases until enough wall time has accumulated for a stable ns/op.
	if err := phase(); err != nil {
		return benchPoint{}, err
	}
	var (
		iters     int
		wall      time.Duration
		simSpan   time.Duration
		simulated = func() time.Duration { return d.Now() }
	)
	for wall < 500*time.Millisecond || iters < 3 {
		s0, w0 := simulated(), time.Now()
		if err := phase(); err != nil {
			return benchPoint{}, err
		}
		wall += time.Since(w0)
		simSpan += simulated() - s0
		iters++
	}
	pt := benchPoint{
		Workload:   "read",
		Clients:    clients,
		Iterations: iters,
		WallNsOp:   float64(wall.Nanoseconds()) / float64(iters),
		SimMBps:    float64(iters) * tiles * tileB / simSpan.Seconds() / 1e6,
	}
	if cacheBytes > 0 {
		cs := d.CacheStats()
		pt.Cache = &cs
	}
	return pt, nil
}

// measureMixed drives a mixed read/write workload over one shared space:
// each client owns a disjoint set of 64x64 tiles and, per phase, overwrites
// each of its tiles then reads it back. Payload bytes count both directions.
func measureMixed(clients int, cacheBytes int64, prefetch int) (benchPoint, error) {
	const (
		dim   = 1024
		tiles = 256 // 16x16 grid of 64x64 tiles
		tileB = 64 * 64 * 4
	)
	d, err := nds.Open(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  16 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	})
	if err != nil {
		return benchPoint{}, err
	}
	defer d.Close()
	id, err := d.CreateSpace(4, []int64{dim, dim})
	if err != nil {
		return benchPoint{}, err
	}
	w, err := d.OpenSpace(id, []int64{dim, dim})
	if err != nil {
		return benchPoint{}, err
	}
	data := make([]byte, dim*dim*4)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := w.Write([]int64{0, 0}, []int64{dim, dim}, data); err != nil {
		return benchPoint{}, err
	}
	if err := w.Close(); err != nil {
		return benchPoint{}, err
	}
	views := make([]*nds.Space, clients)
	for i := range views {
		if views[i], err = d.OpenSpace(id, []int64{dim, dim}); err != nil {
			return benchPoint{}, err
		}
	}
	defer func() {
		for _, v := range views {
			v.Close()
		}
	}()

	phase := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(500 + c)))
				payload := make([]byte, tileB)
				buf := make([]byte, tileB)
				coord := make([]int64, 2)
				sub := []int64{64, 64}
				for k := 0; k < per; k++ {
					tile := int64(c*per + k)
					coord[0], coord[1] = tile/16, tile%16
					rng.Read(payload)
					if _, err := views[c].Write(coord, sub, payload); err != nil {
						errs <- err
						return
					}
					if _, _, err := views[c].ReadInto(coord, sub, buf); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	pt, err := timedPhases("mixed", clients, 2*tiles*tileB, phase, d)
	if err != nil {
		return benchPoint{}, err
	}
	if cacheBytes > 0 {
		cs := d.CacheStats()
		pt.Cache = &cs
	}
	return pt, nil
}

// measureWrite drives the write-heavy workload: one 512x512 float32 space
// per client, each overwritten in 64-row bands (128 KiB per write) from its
// own stream — the same shape as BenchmarkConcurrentWriters, so the JSON
// snapshot tracks the concurrent write path release over release.
func measureWrite(clients int, cacheBytes int64, prefetch int) (benchPoint, error) {
	const (
		dim   = 512
		bands = 8 // dim / 64
		bandB = 64 * dim * 4
	)
	d, err := nds.Open(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  64 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	})
	if err != nil {
		return benchPoint{}, err
	}
	defer d.Close()
	spaces := make([]*nds.Space, clients)
	for i := range spaces {
		id, err := d.CreateSpace(4, []int64{dim, dim})
		if err != nil {
			return benchPoint{}, err
		}
		if spaces[i], err = d.OpenSpace(id, []int64{dim, dim}); err != nil {
			return benchPoint{}, err
		}
	}
	defer func() {
		for _, sp := range spaces {
			sp.Close()
		}
	}()

	phase := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c, sp := range spaces {
			wg.Add(1)
			go func(c int, sp *nds.Space) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(700 + c)))
				band := make([]byte, bandB)
				coord := make([]int64, 2)
				sub := []int64{64, dim}
				for k := int64(0); k < bands; k++ {
					rng.Read(band)
					coord[0], coord[1] = k, 0
					if _, err := sp.Write(coord, sub, band); err != nil {
						errs <- err
						return
					}
				}
			}(c, sp)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	return timedPhases("write", clients, int64(clients)*bands*bandB, phase, d)
}

// timedPhases runs one warm-up phase, then repeats the phase until enough
// wall time accumulates for a stable ns/op, and packages the result with the
// device's GC counters.
func timedPhases(workload string, clients int, bytesPerPhase int64, phase func() error, d *nds.Device) (benchPoint, error) {
	if err := phase(); err != nil {
		return benchPoint{}, err
	}
	var (
		iters   int
		wall    time.Duration
		simSpan time.Duration
	)
	for wall < 500*time.Millisecond || iters < 3 {
		s0, w0 := d.Now(), time.Now()
		if err := phase(); err != nil {
			return benchPoint{}, err
		}
		wall += time.Since(w0)
		simSpan += d.Now() - s0
		iters++
	}
	gc := d.GCStats()
	return benchPoint{
		Workload:   workload,
		Clients:    clients,
		Iterations: iters,
		WallNsOp:   float64(wall.Nanoseconds()) / float64(iters),
		SimMBps:    float64(iters) * float64(bytesPerPhase) / simSpan.Seconds() / 1e6,
		GC:         &gc,
	}, nil
}
