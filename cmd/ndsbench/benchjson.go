package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"nds"
)

// benchSnapshot is the schema of BENCH_<rev>.json: one record per measured
// configuration of the concurrent-client benchmark, so successive revisions
// can be diffed to track the performance trajectory.
type benchSnapshot struct {
	Revision  string `json:"revision"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Benchmark string `json:"benchmark"`
	// CacheBytes/PrefetchDepth record the device configuration the snapshot
	// was taken with, so -benchcompare reruns the same configuration.
	CacheBytes    int64        `json:"cache_bytes,omitempty"`
	PrefetchDepth int          `json:"prefetch_depth,omitempty"`
	Results       []benchPoint `json:"results"`
}

type benchPoint struct {
	Clients    int     `json:"clients"`
	Iterations int     `json:"iterations"`
	WallNsOp   float64 `json:"wall_ns_per_op"`
	SimMBps    float64 `json:"sim_mb_per_s"`
	// Cache carries the device's cache counters after the measured phases
	// (omitted when the cache is disabled).
	Cache *nds.CacheStats `json:"cache,omitempty"`
}

// revision returns the VCS commit baked into the binary by the Go toolchain,
// or "dev" for non-VCS builds (go run, test binaries).
func revision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	return "dev"
}

// benchJSON measures the concurrent tile-read workload (the same shape as
// BenchmarkConcurrentClients: 256 disjoint 64x64 tiles of a written
// 1024x1024 float32 space, split across client streams) and writes
// BENCH_<rev>.json with both the wall-clock cost per phase and the simulated
// aggregate bandwidth.
func benchJSON(cacheBytes int64, prefetch int) {
	snap := measureSnapshot(cacheBytes, prefetch)
	out := fmt.Sprintf("BENCH_%s.json", snap.Revision)
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatalf("bench json: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatalf("bench json: %v", err)
	}
	header("Benchmark snapshot")
	printSnapshot(snap)
	fmt.Printf("wrote %s\n", out)
}

func measureSnapshot(cacheBytes int64, prefetch int) benchSnapshot {
	snap := benchSnapshot{
		Revision:      revision(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Benchmark:     "ConcurrentClients",
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	}
	for _, clients := range []int{1, 16} {
		pt, err := measureConcurrent(clients, cacheBytes, prefetch)
		if err != nil {
			fatalf("bench json (clients=%d): %v", clients, err)
		}
		snap.Results = append(snap.Results, pt)
	}
	return snap
}

func printSnapshot(snap benchSnapshot) {
	fmt.Printf("%-10s %12s %14s %14s\n", "clients", "wall ns/op", "sim-MB/s", "cache hit%")
	for _, p := range snap.Results {
		hitPct := "-"
		if p.Cache != nil && p.Cache.Hits+p.Cache.Misses > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*float64(p.Cache.Hits)/float64(p.Cache.Hits+p.Cache.Misses))
		}
		fmt.Printf("%-10d %12.0f %14.1f %14s\n", p.Clients, p.WallNsOp, p.SimMBps, hitPct)
	}
}

// benchCompare reruns the benchmark with a committed snapshot's configuration
// and fails (exit 1) when simulated throughput regresses beyond simTol or
// wall-clock cost regresses beyond wallTol. wallTol defaults loose (3x):
// wall-clock numbers from another machine are only a smoke bound, while
// simulated throughput is deterministic and held tight.
func benchCompare(path string, simTol, wallTol float64) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalf("bench compare: %v", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(buf, &base); err != nil {
		fatalf("bench compare: %s: %v", path, err)
	}
	cur := measureSnapshot(base.CacheBytes, base.PrefetchDepth)
	header(fmt.Sprintf("Benchmark comparison vs %s (rev %s)", path, base.Revision))
	printSnapshot(cur)
	failed := false
	for _, bp := range base.Results {
		var cp *benchPoint
		for i := range cur.Results {
			if cur.Results[i].Clients == bp.Clients {
				cp = &cur.Results[i]
			}
		}
		if cp == nil {
			fmt.Printf("clients=%d: missing from current run\n", bp.Clients)
			failed = true
			continue
		}
		simRatio := cp.SimMBps / bp.SimMBps
		wallRatio := cp.WallNsOp / bp.WallNsOp
		fmt.Printf("clients=%d: sim %0.1f -> %0.1f MB/s (%.2fx), wall %0.0f -> %0.0f ns/op (%.2fx)\n",
			bp.Clients, bp.SimMBps, cp.SimMBps, simRatio, bp.WallNsOp, cp.WallNsOp, wallRatio)
		if simRatio < 1-simTol {
			fmt.Printf("clients=%d: FAIL simulated throughput regressed beyond %.0f%%\n", bp.Clients, simTol*100)
			failed = true
		}
		if wallRatio > wallTol {
			fmt.Printf("clients=%d: FAIL wall-clock cost regressed beyond %.1fx\n", bp.Clients, wallTol)
			failed = true
		}
	}
	if failed {
		fatalf("bench compare: regression against %s", path)
	}
	fmt.Println("within tolerance")
}

func measureConcurrent(clients int, cacheBytes int64, prefetch int) (benchPoint, error) {
	const (
		dim   = 1024
		tiles = 256 // 16x16 grid of 64x64 tiles
		tileB = 64 * 64 * 4
	)
	d, err := nds.Open(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  16 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
	})
	if err != nil {
		return benchPoint{}, err
	}
	id, err := d.CreateSpace(4, []int64{dim, dim})
	if err != nil {
		return benchPoint{}, err
	}
	w, err := d.OpenSpace(id, []int64{dim, dim})
	if err != nil {
		return benchPoint{}, err
	}
	data := make([]byte, dim*dim*4)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := w.Write([]int64{0, 0}, []int64{dim, dim}, data); err != nil {
		return benchPoint{}, err
	}
	if err := w.Close(); err != nil {
		return benchPoint{}, err
	}

	views := make([]*nds.Space, clients)
	for i := range views {
		if views[i], err = d.OpenSpace(id, []int64{dim, dim}); err != nil {
			return benchPoint{}, err
		}
	}
	defer func() {
		for _, v := range views {
			v.Close()
		}
	}()

	phase := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, tileB)
				coord := make([]int64, 2)
				sub := []int64{64, 64}
				for k := 0; k < per; k++ {
					tile := int64(c*per + k)
					coord[0], coord[1] = tile/16, tile%16
					if _, _, err := views[c].ReadInto(coord, sub, buf); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	// Warm up once (page-plan pools, lazily allocated die arenas), then run
	// phases until enough wall time has accumulated for a stable ns/op.
	if err := phase(); err != nil {
		return benchPoint{}, err
	}
	var (
		iters     int
		wall      time.Duration
		simSpan   time.Duration
		simulated = func() time.Duration { return d.Now() }
	)
	for wall < 500*time.Millisecond || iters < 3 {
		s0, w0 := simulated(), time.Now()
		if err := phase(); err != nil {
			return benchPoint{}, err
		}
		wall += time.Since(w0)
		simSpan += simulated() - s0
		iters++
	}
	pt := benchPoint{
		Clients:    clients,
		Iterations: iters,
		WallNsOp:   float64(wall.Nanoseconds()) / float64(iters),
		SimMBps:    float64(iters) * tiles * tileB / simSpan.Seconds() / 1e6,
	}
	if cacheBytes > 0 {
		cs := d.CacheStats()
		pt.Cache = &cs
	}
	return pt, nil
}
