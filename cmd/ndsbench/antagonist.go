package main

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"nds"
	"nds/internal/ndsserver"
)

// The antagonist benchmark is the acceptance check for tenant QoS: a victim
// tenant's open-loop tail latency must stay bounded while a second tenant
// floods the same server at ten times the victim's rate. Without the fair
// scheduler the antagonist books every channel timeline deep into the future
// and the victim's p99 grows with the backlog; with it, the antagonist's
// surplus queues at admission (token bucket first, then the weighted fair
// queue) and the victim keeps its share.
const (
	antConns      = 4   // connections per tenant
	antVictimRate = 400 // victim aggregate target, ops/s
	antFloodScale = 10  // antagonist target = antFloodScale * antVictimRate
	// antRateCap is the token-bucket rate imposed on the antagonist tenant:
	// 1/32 of its offered 64 MB/s (10x rate * 16 KiB tiles), a third of the
	// victim's own demand. The bucket is the binding constraint — ThrottleNs
	// must accumulate — and the admitted flood is small enough that the
	// victim's tail measures storage scheduling, not raw CPU contention on
	// small (single-core) CI machines.
	antRateCap = 2 << 20 // bytes/s
	// antMaxOutstanding bounds the antagonist's per-connection backlog: a
	// throttled open-loop tenant otherwise accumulates its whole offered load
	// as blocked requests (minutes of drain after the phase ends, thousands
	// of goroutines of scheduler noise). Shed arrivals are counted; the
	// server still sees a saturating flood far above the victim's demand.
	antMaxOutstanding = 32

	// antTrials interleaved solo/flood measurements, gated on the median p99
	// of each phase: a single trial's p99 on a small shared machine moves 2-3x
	// between runs on scheduler luck alone, which would make the isolation
	// ratio a coin flip.
	antTrials = 3

	antWarmDur  = 500 * time.Millisecond
	antSoloDur  = 1500 * time.Millisecond
	antFloodDur = 2 * time.Second
)

// antagonistResult carries both phases: the victim alone, then the same
// victim load with the antagonist flooding concurrently.
type antagonistResult struct {
	Solo       netResult // victim, no antagonist
	Victim     netResult // victim, under flood
	Antagonist netResult // the flood itself
	// ThrottleNs/QueueWaitNs are the antagonist tenant's accumulated
	// admission delays — nonzero iff QoS actually gated it.
	ThrottleNs  int64
	QueueWaitNs int64
}

// runAntagonistLoad self-hosts a QoS-enabled server and alternates antTrials
// solo-victim and victim-under-flood measurements, where the flood is the
// antagonist offering antFloodScale times the victim's rate from its own
// space (= its own tenant). Reported phases are median-p99 trials.
func runAntagonistLoad(cacheBytes int64, prefetch int) (antagonistResult, error) {
	debug.FreeOSMemory()
	dev, addr, cleanup, err := selfHostedServer(nds.Options{
		Mode:          nds.ModeHardware,
		CapacityHint:  16 << 20,
		CacheBytes:    cacheBytes,
		PrefetchDepth: prefetch,
		TenantQoS:     &nds.TenantQoS{Weight: 1},
	}, ndsserver.Config{MaxConns: 2*antConns + 8}, "ndsbench-ant")
	if err != nil {
		return antagonistResult{}, err
	}
	defer cleanup()

	_, vicClients, vicViews, err := dialNetGroup(addr, antConns)
	if err != nil {
		return antagonistResult{}, fmt.Errorf("victim: %w", err)
	}
	defer closeClients(vicClients)
	antSpace, antClients, antViews, err := dialNetGroup(addr, antConns)
	if err != nil {
		return antagonistResult{}, fmt.Errorf("antagonist: %w", err)
	}
	defer closeClients(antClients)
	if err := dev.SetTenantQoS(nds.SpaceID(antSpace), nds.TenantQoS{
		Weight:          1,
		RateBytesPerSec: antRateCap,
	}); err != nil {
		return antagonistResult{}, err
	}

	victimOpts := func(d time.Duration) netOpts {
		return netOpts{
			Conns:   antConns,
			Rate:    antVictimRate,
			Dur:     d,
			Arrival: "poisson",
			ZipfS:   1.1,
		}
	}
	// A discarded warmup drive settles one-time costs (allocator growth, GC
	// pacing, scheduler spin-up) that otherwise land as outliers in the solo
	// baseline's p99 and make the isolation ratio meaningless.
	var res antagonistResult
	if _, err = driveOpenLoop(vicClients, vicViews, victimOpts(antWarmDur), 31000); err != nil {
		return res, fmt.Errorf("warmup phase: %w", err)
	}

	antOpts := victimOpts(antFloodDur)
	antOpts.Rate = antFloodScale * antVictimRate
	antOpts.MaxOutstanding = antMaxOutstanding
	var solos, floods, antRuns []netResult
	for trial := 0; trial < antTrials; trial++ {
		seed := int64(1000 * trial)
		solo, err := driveOpenLoop(vicClients, vicViews, victimOpts(antSoloDur), 9000+seed)
		if err != nil {
			return res, fmt.Errorf("solo trial %d: %w", trial, err)
		}
		if solo.Errors > 0 {
			return res, fmt.Errorf("solo trial %d: %d requests failed", trial, solo.Errors)
		}
		solos = append(solos, solo)

		var wg sync.WaitGroup
		var vic, ant netResult
		var vicErr, antErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			vic, vicErr = driveOpenLoop(vicClients, vicViews, victimOpts(antFloodDur), 9000+seed)
		}()
		go func() {
			defer wg.Done()
			ant, antErr = driveOpenLoop(antClients, antViews, antOpts, 17000+seed)
		}()
		wg.Wait()
		if vicErr != nil {
			return res, fmt.Errorf("flood trial %d (victim): %w", trial, vicErr)
		}
		if antErr != nil {
			return res, fmt.Errorf("flood trial %d (antagonist): %w", trial, antErr)
		}
		if vic.Errors > 0 || ant.Errors > 0 {
			return res, fmt.Errorf("flood trial %d: %d victim / %d antagonist requests failed",
				trial, vic.Errors, ant.Errors)
		}
		floods = append(floods, vic)
		antRuns = append(antRuns, ant)
	}
	res.Solo = medianByP99(solos)
	mi := medianIndexByP99(floods)
	res.Victim = floods[mi]
	res.Antagonist = antRuns[mi]

	antTenant := nds.SpaceID(antSpace)
	for _, t := range dev.TenantStats() {
		if !t.IsGroup && t.Space == antTenant {
			res.ThrottleNs = int64(t.Throttle)
			res.QueueWaitNs = int64(t.QueueWait)
		}
	}
	return res, nil
}

// medianIndexByP99 returns the index of the run with the median P99Ns —
// trials are gated on their median so one unlucky (or lucky) trial cannot
// decide the isolation verdict.
func medianIndexByP99(runs []netResult) int {
	idx := make([]int, len(runs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && runs[idx[j]].P99Ns < runs[idx[j-1]].P99Ns; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx[len(idx)/2]
}

func medianByP99(runs []netResult) netResult { return runs[medianIndexByP99(runs)] }

// antP99SlackNs absorbs scheduler jitter in sub-millisecond percentiles: on a
// loaded CI machine a single preemption moves a ~300 us p99 by more than the
// isolation bound, so the gate is bound*solo plus this absolute floor. The
// report prints both numbers; the slack hides nothing.
const antP99SlackNs = 250e3

// runAntagonist is the -antagonist CLI mode: run both phases and fail (exit
// 1) unless the flooded victim's p99 stays within bound x solo (+ slack).
func runAntagonist(bound float64) {
	header(fmt.Sprintf("Tenant isolation: victim vs %dx antagonist", antFloodScale))
	fmt.Printf("victim %d conns at %d ops/s, antagonist %d conns at %d ops/s (rate cap %d MB/s); median of %d trials\n",
		antConns, antVictimRate, antConns, antFloodScale*antVictimRate, antRateCap>>20, antTrials)
	res, err := runAntagonistLoad(0, 0)
	if err != nil {
		fatalf("antagonist: %v", err)
	}
	fmt.Printf("victim solo:   done %6d  achieved %7.1f ops/s  p50 %5.0fus  p99 %5.0fus\n",
		res.Solo.Done, res.Solo.AchievedRps, res.Solo.P50Ns/1e3, res.Solo.P99Ns/1e3)
	fmt.Printf("victim flood:  done %6d  achieved %7.1f ops/s  p50 %5.0fus  p99 %5.0fus\n",
		res.Victim.Done, res.Victim.AchievedRps, res.Victim.P50Ns/1e3, res.Victim.P99Ns/1e3)
	fmt.Printf("antagonist:    done %6d  shed %6d  achieved %7.1f ops/s  throttled %v  queued %v\n",
		res.Antagonist.Done, res.Antagonist.Shed, res.Antagonist.AchievedRps,
		time.Duration(res.ThrottleNs).Round(time.Millisecond),
		time.Duration(res.QueueWaitNs).Round(time.Millisecond))
	if res.ThrottleNs == 0 {
		fatalf("antagonist: token bucket never throttled the flood (QoS gate not engaged)")
	}
	limit := bound*res.Solo.P99Ns + antP99SlackNs
	ratio := res.Victim.P99Ns / res.Solo.P99Ns
	fmt.Printf("victim p99 under flood: %.2fx solo (gate: %.1fx + %dus slack)\n",
		ratio, bound, int(antP99SlackNs/1e3))
	if res.Victim.P99Ns > limit {
		fatalf("antagonist: victim p99 %.0fus exceeds %.0fus (%.1fx solo %.0fus + slack)",
			res.Victim.P99Ns/1e3, limit/1e3, bound, res.Solo.P99Ns/1e3)
	}
	fmt.Println("isolation holds")
}

// measureAntagonistPoint packages the flooded victim's tail latency as the
// "net-antagonist" snapshot point, so -benchcompare gates tenant isolation
// (via the p99 wall gate) release over release.
func measureAntagonistPoint(cacheBytes int64, prefetch int) (benchPoint, error) {
	res, err := runAntagonistLoad(cacheBytes, prefetch)
	if err != nil {
		return benchPoint{}, err
	}
	if res.ThrottleNs == 0 {
		return benchPoint{}, fmt.Errorf("token bucket never throttled the antagonist")
	}
	return benchPoint{
		Workload:    "net-antagonist",
		Clients:     antConns,
		Iterations:  int(res.Victim.Done),
		WallNsOp:    res.Victim.MeanNs,
		RateRps:     antVictimRate,
		AchievedRps: res.Victim.AchievedRps,
		P50Ns:       res.Victim.P50Ns,
		P99Ns:       res.Victim.P99Ns,
		P999Ns:      res.Victim.P999Ns,
	}, nil
}
