package main

import (
	"fmt"
	"time"

	"nds/internal/datagen"
	"nds/internal/system"
	"nds/internal/workloads"
)

// The device-resident kernel benchmarks: the workload kernels whose selection
// phase (frontier expansion, candidate pruning, delta filtering) can execute
// at the STL, measured both ways. runKernels prints the Figure-10 view of the
// timed catalog with the pushdown pipelines added; measureKernel backs the
// kernel-* points of -json / -benchcompare with the functional kernels on
// real data, whose link-byte savings are deterministic.

// measureKernel runs one functional device kernel on hardware NDS in both its
// pushdown and read-everything forms. SavingsX is the deterministic link-byte
// reduction; SimMBps rates the bytes the kernel logically examined (the
// read-everything link volume) against the pushdown run's simulated time, so
// the -benchcompare sim gate tracks the in-storage execution cost.
func measureKernel(name string) (benchPoint, error) {
	newSys := func(capacity int64) (*system.System, error) {
		return system.New(system.HardwareNDS, system.PrototypeConfig(capacity, false))
	}
	var push, read workloads.KernelStats
	var wall time.Duration
	switch name {
	case "kernel-bfs":
		const n = 128
		adj, err := datagen.Graph(n, 600, 27)
		if err != nil {
			return benchPoint{}, err
		}
		for _, p := range []bool{true, false} {
			sys, err := newSys(n * n * 4)
			if err != nil {
				return benchPoint{}, err
			}
			w0 := time.Now()
			_, ks, err := workloads.BFSDevice(sys, adj, 0, p)
			if err != nil {
				return benchPoint{}, err
			}
			if p {
				push, wall = ks, time.Since(w0)
			} else {
				read = ks
			}
		}
	case "kernel-knn":
		const (
			pts = 256
			dim = 64
			k   = 8
		)
		points, centres, err := datagen.Clustering(pts, dim, 4, 28)
		if err != nil {
			return benchPoint{}, err
		}
		query := make([]float32, dim)
		copy(query, centres.Data[:dim])
		capacity := int64(2*pts*dim*4 + 8*pts)
		for _, p := range []bool{true, false} {
			sys, err := newSys(capacity)
			if err != nil {
				return benchPoint{}, err
			}
			w0 := time.Now()
			_, ks, err := workloads.KNNDevice(sys, points, query, k, p)
			if err != nil {
				return benchPoint{}, err
			}
			if p {
				push, wall = ks, time.Since(w0)
			} else {
				read = ks
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown kernel point %q", name)
	}
	pt := benchPoint{
		Workload:   name,
		Clients:    1,
		Iterations: 1,
		WallNsOp:   float64(wall.Nanoseconds()),
		SimMBps:    float64(read.LinkBytes) / push.Done.Seconds() / 1e6,
	}
	if push.LinkBytes > 0 {
		pt.SavingsX = float64(read.LinkBytes) / float64(push.LinkBytes)
	}
	return pt, nil
}

// runKernels prints the pushdown view of the Figure-10 harness: for every
// push-enabled catalog workload, the end-to-end simulated time of each
// platform with and without the selection pushed down, the per-iteration
// stage split (fetch/copy/kernel), and the hardware link traffic; then a BFS
// selectivity sweep showing where pushing the frontier scan down stops
// paying; then the functional kernels' measured savings.
func runKernels() {
	header("Device-resident workload kernels: pushdown stage split (Figure 10)")
	fmt.Println("catalog at 1/4 scale; push = selection phase executed at the STL")
	fmt.Println()
	var bfs workloads.Spec
	for _, s := range workloads.Catalog() {
		if s.Push == nil {
			continue
		}
		if s.Name == "BFS" {
			bfs = s
		}
		res, err := workloads.Run(s.Scaled(4))
		if err != nil {
			fatalf("kernels %s: %v", s.Name, err)
		}
		fmt.Printf("%-9s baseline %v   sw %v -> %v   hw %v -> %v (win %.2fx)\n",
			s.Name, res.Baseline, res.Software, res.SoftwarePush,
			res.Hardware, res.HardwarePush, res.PushWinHW)
		fmt.Printf("%9s stages/iter hw: fetch %v -> %v, copy %v -> %v, kernel %v -> %v\n",
			"", res.HWFetch, res.HWPushFetch, res.CopyRead, res.CopyPush,
			res.KernelRead, res.KernelPush)
		fmt.Printf("%9s link B/iter: hw %d -> %d (%.0fx), sw %d -> %d\n",
			"", res.HWLinkBytes, res.HWPushLinkBytes,
			float64(res.HWLinkBytes)/float64(res.HWPushLinkBytes),
			res.SWLinkBytes, res.SWPushLinkBytes)
	}

	fmt.Println("\nBFS frontier-scan selectivity sweep (hardware NDS):")
	fmt.Printf("%-12s %14s %16s %8s\n", "selectivity", "hw-push sim", "hw link B/iter", "win")
	for _, sel := range []float64{0.001, 0.01, 0.1} {
		s := bfs.Scaled(4)
		p := *s.Push
		p.Selectivity = sel
		s.Push = &p
		res, err := workloads.Run(s)
		if err != nil {
			fatalf("kernels sweep: %v", err)
		}
		fmt.Printf("%-12s %14v %16d %7.2fx\n",
			fmt.Sprintf("%g%%", sel*100), res.HardwarePush, res.HWPushLinkBytes, res.PushWinHW)
	}

	fmt.Println("\nfunctional device kernels (hardware NDS, real data):")
	for _, name := range []string{"kernel-bfs", "kernel-knn"} {
		pt, err := measureKernel(name)
		if err != nil {
			fatalf("kernels %s: %v", name, err)
		}
		fmt.Printf("  %-10s %6.0fx fewer interconnect bytes than read-everything (device-side %.1f sim-MB/s)\n",
			name, pt.SavingsX, pt.SimMBps)
	}
	fmt.Println("\nwin = hardware sim time without pushdown / with pushdown; >1 means the")
	fmt.Println("link-byte savings outweigh the controller's slower selection scan")
}
