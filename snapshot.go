package nds

import (
	"encoding/binary"
	"fmt"
	"io"

	"nds/internal/stl"
)

// Export and Import move datasets between devices as logical snapshots: the
// producer-side dump/restore path a deployment needs for backup, device
// replacement, or migrating a dataset onto a drive with a different internal
// geometry (the snapshot carries dimensionality, not physical layout, so the
// receiving STL re-places building blocks for its own device — exactly the
// portability argument of challenge [C1]).
//
// Snapshot format (little-endian):
//
//	magic "NDSS", uint32 version, uint32 space count, then per space:
//	uint32 id, uint32 elemSize, uint32 rank, rank x int64 dims,
//	int64 payload length, payload (row-major bytes).

const (
	snapshotMagic   = "NDSS"
	snapshotVersion = 1
)

// Export writes every space of the device to w. Data-bearing devices only.
func (d *Device) Export(w io.Writer) error {
	d.io.RLock()
	defer d.io.RUnlock()
	if d.sys.Dev.Phantom() {
		return fmt.Errorf("nds: cannot export a phantom device (no stored bytes)")
	}
	ids := d.sys.STL.SpaceIDs()
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(snapshotVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := d.exportSpace(w, uint32(id)); err != nil {
			return fmt.Errorf("nds: export space %d: %w", id, err)
		}
	}
	return nil
}

func (d *Device) exportSpace(w io.Writer, id uint32) error {
	sp, ok := d.sys.STL.Space(stl.SpaceID(id))
	if !ok {
		return fmt.Errorf("space vanished")
	}
	dims := sp.Dims()
	hdr := []any{uint32(id), uint32(sp.ElemSize()), uint32(len(dims))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, dim := range dims {
		if err := binary.Write(w, binary.LittleEndian, dim); err != nil {
			return err
		}
	}
	view, err := stl.NewView(sp, dims)
	if err != nil {
		return err
	}
	coord := make([]int64, len(dims))
	data, _, _, err := d.sys.STL.ReadPartition(d.clock(), view, coord, dims)
	if err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(data))); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Import restores a snapshot into this device, creating one space per
// snapshot entry and returning the mapping from snapshot space IDs to the
// IDs assigned here. The device's own geometry decides the building-block
// layout.
func (d *Device) Import(r io.Reader) (map[SpaceID]SpaceID, error) {
	d.io.Lock()
	defer d.io.Unlock()
	if d.sys.Dev.Phantom() {
		return nil, fmt.Errorf("nds: cannot import into a phantom device")
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("nds: bad snapshot magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("nds: unsupported snapshot version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	mapping := make(map[SpaceID]SpaceID, count)
	for i := uint32(0); i < count; i++ {
		oldID, newID, err := d.importSpace(r)
		if err != nil {
			return nil, fmt.Errorf("nds: import entry %d: %w", i, err)
		}
		mapping[oldID] = newID
	}
	return mapping, nil
}

func (d *Device) importSpace(r io.Reader) (SpaceID, SpaceID, error) {
	var oldID, elem, rank uint32
	for _, p := range []*uint32{&oldID, &elem, &rank} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return 0, 0, err
		}
	}
	if rank == 0 || rank > 32 {
		return 0, 0, fmt.Errorf("rank %d out of range", rank)
	}
	dims := make([]int64, rank)
	vol := int64(1)
	for i := range dims {
		if err := binary.Read(r, binary.LittleEndian, &dims[i]); err != nil {
			return 0, 0, err
		}
		if dims[i] <= 0 || vol > (1<<42)/dims[i] {
			return 0, 0, fmt.Errorf("unreasonable dims %v", dims)
		}
		vol *= dims[i]
	}
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, 0, err
	}
	if n != vol*int64(elem) {
		return 0, 0, fmt.Errorf("payload %d bytes does not match dims %v x %d", n, dims, elem)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return 0, 0, err
	}
	sp, err := d.sys.STL.CreateSpace(int(elem), dims)
	if err != nil {
		return 0, 0, err
	}
	view, err := stl.NewView(sp, dims)
	if err != nil {
		return 0, 0, err
	}
	coord := make([]int64, rank)
	done, _, err := d.sys.STL.WritePartition(d.clock(), view, coord, dims, data)
	if err != nil {
		return 0, 0, err
	}
	d.advance(done)
	return SpaceID(oldID), SpaceID(sp.ID()), nil
}
