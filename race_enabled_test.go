//go:build race

package nds

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// scaling assertions skip under it: the detector serializes enough of the
// runtime that parallel speedup measurements are meaningless.
const raceEnabled = true
