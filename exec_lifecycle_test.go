package nds

import (
	"errors"
	"sync"
	"testing"

	"nds/internal/proto"
)

// lifecycleFixture is execFixture plus a couple of extra views, typed and
// wire, so retirement tests can watch a populated registry empty out.
func lifecycleFixture(t *testing.T) (d *Device, space SpaceID, views []uint32, typed *Space) {
	t.Helper()
	dev, spaceID, view := execFixture(t)
	d, space = dev, SpaceID(spaceID)
	views = append(views, view)
	page, err := proto.SpacePayload{ElemSize: 4, Dims: []int64{32, 32}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, cpl, _, _ := d.Exec(proto.NewOpenSpace(spaceID, 0, false).Marshal(), page, nil)
	if cpl.Status != proto.StatusOK {
		t.Fatalf("second wire view: %v", cpl.Status)
	}
	views = append(views, uint32(cpl.Result1))
	typed, err = d.OpenSpace(space, []int64{1024})
	if err != nil {
		t.Fatal(err)
	}
	return d, space, views, typed
}

// TestDeleteSpaceRetiresViews is the regression test for the registry leak:
// deleting a space must close every open view of it — wire and typed — so
// the registry returns to zero and stale wire IDs answer StatusUnknownView.
func TestDeleteSpaceRetiresViews(t *testing.T) {
	d, space, views, typed := lifecycleFixture(t)
	if got := d.OpenViews(); got != 3 {
		t.Fatalf("fixture registry size = %d, want 3", got)
	}
	if err := d.DeleteSpace(space); err != nil {
		t.Fatal(err)
	}
	if got := d.OpenViews(); got != 0 {
		t.Fatalf("registry size after delete = %d, want 0 (views leaked)", got)
	}
	page, err := proto.CoordPayload{Coord: []int64{0, 0}, Sub: []int64{8, 8}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if _, cpl, _, _ := d.Exec(proto.NewRead(v, 0).Marshal(), page, nil); cpl.Status != proto.StatusUnknownView {
			t.Errorf("stale wire read on view %d = %v, want unknown view", v, cpl.Status)
		}
		if _, cpl, _, _ := d.Exec(proto.NewCloseSpace(v).Marshal(), nil, nil); cpl.Status != proto.StatusUnknownView {
			t.Errorf("stale wire close on view %d = %v, want unknown view", v, cpl.Status)
		}
	}
	if _, _, err := typed.Read([]int64{0}, []int64{4}); !errors.Is(err, ErrClosedView) {
		t.Errorf("typed read after delete err = %v, want ErrClosedView", err)
	}
	if err := typed.Close(); !errors.Is(err, ErrClosedView) {
		t.Errorf("typed close after delete err = %v, want ErrClosedView", err)
	}
}

// TestResizeSpaceRetiresViews: the documented "views become stale" path must
// actually retire them, exactly like delete — a stale-volume view silently
// serving reads against the restructured space would compute wrong offsets.
func TestResizeSpaceRetiresViews(t *testing.T) {
	d, space, views, typed := lifecycleFixture(t)
	if err := d.ResizeSpace(space, 64); err != nil {
		t.Fatal(err)
	}
	if got := d.OpenViews(); got != 0 {
		t.Fatalf("registry size after resize = %d, want 0 (views leaked)", got)
	}
	page, err := proto.CoordPayload{Coord: []int64{0, 0}, Sub: []int64{8, 8}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if _, cpl, _, _ := d.Exec(proto.NewRead(v, 0).Marshal(), page, nil); cpl.Status != proto.StatusUnknownView {
			t.Errorf("stale wire read on view %d = %v, want unknown view", v, cpl.Status)
		}
	}
	if _, _, err := typed.Read([]int64{0}, []int64{4}); !errors.Is(err, ErrClosedView) {
		t.Errorf("typed read after resize err = %v, want ErrClosedView", err)
	}
	// The space itself survived the resize: a fresh view of the new volume
	// opens and reads.
	fresh, err := d.OpenSpace(space, []int64{64, 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fresh.Read([]int64{0, 0}, []int64{8, 8}); err != nil {
		t.Fatalf("read through fresh view after resize: %v", err)
	}
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}
	// A failed resize (unknown space) retires nothing.
	_, _, _, typed2 := lifecycleFixture(t)
	if err := typed2.dev.ResizeSpace(SpaceID(999), 64); err == nil {
		t.Fatal("resize of unknown space succeeded")
	}
	if got := typed2.dev.OpenViews(); got != 3 {
		t.Fatalf("failed resize retired views: registry = %d, want 3", got)
	}
}

// TestWireViewLifecycleSequences walks multi-command lifecycle sequences at
// the wire level, asserting the status of the final command in each.
func TestWireViewLifecycleSequences(t *testing.T) {
	coordPage := func(t *testing.T) []byte {
		t.Helper()
		p, err := proto.CoordPayload{Coord: []int64{0, 0}, Sub: []int64{8, 8}}.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		run  func(t *testing.T, d *Device, space, view uint32) proto.Status
		want proto.Status
	}{
		{"read after delete_space", func(t *testing.T, d *Device, space, view uint32) proto.Status {
			if _, cpl, _, _ := d.Exec(proto.NewDeleteSpace(space).Marshal(), nil, nil); cpl.Status != proto.StatusOK {
				t.Fatalf("delete: %v", cpl.Status)
			}
			_, cpl, _, _ := d.Exec(proto.NewRead(view, 0).Marshal(), coordPage(t), nil)
			return cpl.Status
		}, proto.StatusUnknownView},

		{"write after delete_space", func(t *testing.T, d *Device, space, view uint32) proto.Status {
			if _, cpl, _, _ := d.Exec(proto.NewDeleteSpace(space).Marshal(), nil, nil); cpl.Status != proto.StatusOK {
				t.Fatalf("delete: %v", cpl.Status)
			}
			_, cpl, _, _ := d.Exec(proto.NewWrite(view, 0).Marshal(), coordPage(t), make([]byte, 8*8*4))
			return cpl.Status
		}, proto.StatusUnknownView},

		{"close after delete_space", func(t *testing.T, d *Device, space, view uint32) proto.Status {
			if _, cpl, _, _ := d.Exec(proto.NewDeleteSpace(space).Marshal(), nil, nil); cpl.Status != proto.StatusOK {
				t.Fatalf("delete: %v", cpl.Status)
			}
			_, cpl, _, _ := d.Exec(proto.NewCloseSpace(view).Marshal(), nil, nil)
			return cpl.Status
		}, proto.StatusUnknownView},

		{"delete twice", func(t *testing.T, d *Device, space, _ uint32) proto.Status {
			if _, cpl, _, _ := d.Exec(proto.NewDeleteSpace(space).Marshal(), nil, nil); cpl.Status != proto.StatusOK {
				t.Fatalf("delete: %v", cpl.Status)
			}
			_, cpl, _, _ := d.Exec(proto.NewDeleteSpace(space).Marshal(), nil, nil)
			return cpl.Status
		}, proto.StatusUnknownSpace},

		{"reopen after close", func(t *testing.T, d *Device, space, view uint32) proto.Status {
			if _, cpl, _, _ := d.Exec(proto.NewCloseSpace(view).Marshal(), nil, nil); cpl.Status != proto.StatusOK {
				t.Fatalf("close: %v", cpl.Status)
			}
			page, _ := proto.SpacePayload{ElemSize: 4, Dims: []int64{32, 32}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(space, 0, false).Marshal(), page, nil)
			if cpl.Status != proto.StatusOK {
				return cpl.Status
			}
			if uint32(cpl.Result1) == view {
				t.Fatal("retired view ID reused")
			}
			_, cpl, _, _ = d.Exec(proto.NewRead(uint32(cpl.Result1), 0).Marshal(), coordPage(t), nil)
			return cpl.Status
		}, proto.StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, space, view := execFixture(t)
			if got := c.run(t, d, space, view); got != c.want {
				t.Fatalf("status = %v, want %v", got, c.want)
			}
			if got := d.OpenViews(); got != 0 && c.want != proto.StatusOK {
				t.Fatalf("registry size after sequence = %d, want 0", got)
			}
		})
	}
}

// TestDeleteSpaceConcurrentWithReads: deleting a space while clients stream
// reads through its views must never produce a success after retirement,
// only clean per-op errors, and must leave the registry empty.
func TestDeleteSpaceConcurrentWithReads(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 4
	views := make([]*Space, readers)
	for i := range views {
		if views[i], err = d.OpenSpace(id, []int64{64, 64}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, v := range views {
		wg.Add(1)
		go func(v *Space) {
			defer wg.Done()
			closedSeen := false
			for i := 0; i < 1000; i++ {
				_, _, err := v.Read([]int64{0, 0}, []int64{8, 8})
				switch {
				case errors.Is(err, ErrClosedView):
					closedSeen = true
				case err != nil:
					// An op in flight during the delete may observe the
					// deletion itself (ErrUnknownSpace); that is fine, but
					// retirement must follow.
				case closedSeen:
					t.Error("read succeeded after the view was retired")
					return
				}
			}
		}(v)
	}
	if err := d.DeleteSpace(id); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := d.OpenViews(); got != 0 {
		t.Fatalf("registry size after concurrent delete = %d, want 0", got)
	}
}
