package nds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestDifferentialConcurrentStreams runs the same 16-stream mixed read/write
// workload against a batched-path device and a scalar-path device and
// requires identical payload bytes and per-command statistics. Completion
// times are not compared here: with concurrent streams the simulated schedule
// depends on the wall-clock interleaving of the streams (equally so on both
// paths), so time equivalence is asserted by the sequential differential
// tests in internal/stl. Run under -race (CI does) this doubles as the race
// check for the sharded device state and pooled request scratch.
func TestDifferentialConcurrentStreams(t *testing.T) {
	const (
		clients = 16
		tiles   = 256 // 16x16 grid of 64x64 tiles
		tileB   = 64 * 64 * 4
	)
	type cmdResult struct {
		bytes   int64
		pages   int64
		extents int
	}
	run := func(scalar bool) ([]cmdResult, []byte) {
		d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20, ScalarDataPath: scalar})
		if err != nil {
			t.Fatal(err)
		}
		id, err := d.CreateSpace(4, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		seed, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		base := make([]byte, 1024*1024*4)
		rand.New(rand.NewSource(11)).Read(base)
		if _, err := seed.Write([]int64{0, 0}, []int64{1024, 1024}, base); err != nil {
			t.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			t.Fatal(err)
		}

		results := make([]cmdResult, tiles*2) // per tile: one write, one read
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				v, err := d.OpenSpace(id, []int64{1024, 1024})
				if err != nil {
					errs <- err
					return
				}
				defer v.Close()
				buf := make([]byte, tileB)
				payload := make([]byte, tileB)
				for k := 0; k < per; k++ {
					tile := int64(c*per + k)
					coord := []int64{tile / 16, tile % 16}
					rand.New(rand.NewSource(tile)).Read(payload)
					st, err := v.Write(coord, []int64{64, 64}, payload)
					if err != nil {
						errs <- fmt.Errorf("tile %d write: %w", tile, err)
						return
					}
					results[tile*2] = cmdResult{st.Bytes, st.Pages, st.Extents}
					data, st, err := v.ReadInto(coord, []int64{64, 64}, buf)
					if err != nil {
						errs <- fmt.Errorf("tile %d read: %w", tile, err)
						return
					}
					if !bytes.Equal(data, payload) {
						errs <- fmt.Errorf("tile %d read back wrong bytes", tile)
						return
					}
					results[tile*2+1] = cmdResult{st.Bytes, st.Pages, st.Extents}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		final, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := final.Read([]int64{0, 0}, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := final.Close(); err != nil {
			t.Fatal(err)
		}
		return results, full
	}

	batchedRes, batchedData := run(false)
	scalarRes, scalarData := run(true)
	for i := range batchedRes {
		if batchedRes[i] != scalarRes[i] {
			t.Errorf("command %d stats diverge: batched=%+v scalar=%+v", i, batchedRes[i], scalarRes[i])
		}
	}
	if !bytes.Equal(batchedData, scalarData) {
		t.Fatal("final space contents diverge between batched and scalar paths")
	}
}
