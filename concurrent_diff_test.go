package nds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestDifferentialConcurrentStreams runs the same 16-stream mixed read/write
// workload against a batched-path device and a scalar-path device and
// requires identical payload bytes and per-command statistics. Completion
// times are not compared here: with concurrent streams the simulated schedule
// depends on the wall-clock interleaving of the streams (equally so on both
// paths), so time equivalence is asserted by the sequential differential
// tests in internal/stl. Run under -race (CI does) this doubles as the race
// check for the sharded device state and pooled request scratch.
func TestDifferentialConcurrentStreams(t *testing.T) {
	const (
		clients = 16
		tiles   = 256 // 16x16 grid of 64x64 tiles
		tileB   = 64 * 64 * 4
	)
	type cmdResult struct {
		bytes   int64
		pages   int64
		extents int
	}
	run := func(scalar bool) ([]cmdResult, []byte) {
		d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20, ScalarDataPath: scalar})
		if err != nil {
			t.Fatal(err)
		}
		id, err := d.CreateSpace(4, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		seed, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		base := make([]byte, 1024*1024*4)
		rand.New(rand.NewSource(11)).Read(base)
		if _, err := seed.Write([]int64{0, 0}, []int64{1024, 1024}, base); err != nil {
			t.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			t.Fatal(err)
		}

		results := make([]cmdResult, tiles*2) // per tile: one write, one read
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				v, err := d.OpenSpace(id, []int64{1024, 1024})
				if err != nil {
					errs <- err
					return
				}
				defer v.Close()
				buf := make([]byte, tileB)
				payload := make([]byte, tileB)
				for k := 0; k < per; k++ {
					tile := int64(c*per + k)
					coord := []int64{tile / 16, tile % 16}
					rand.New(rand.NewSource(tile)).Read(payload)
					st, err := v.Write(coord, []int64{64, 64}, payload)
					if err != nil {
						errs <- fmt.Errorf("tile %d write: %w", tile, err)
						return
					}
					results[tile*2] = cmdResult{st.Bytes, st.Pages, st.Extents}
					data, st, err := v.ReadInto(coord, []int64{64, 64}, buf)
					if err != nil {
						errs <- fmt.Errorf("tile %d read: %w", tile, err)
						return
					}
					if !bytes.Equal(data, payload) {
						errs <- fmt.Errorf("tile %d read back wrong bytes", tile)
						return
					}
					results[tile*2+1] = cmdResult{st.Bytes, st.Pages, st.Extents}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		final, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := final.Read([]int64{0, 0}, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := final.Close(); err != nil {
			t.Fatal(err)
		}
		return results, full
	}

	batchedRes, batchedData := run(false)
	scalarRes, scalarData := run(true)
	for i := range batchedRes {
		if batchedRes[i] != scalarRes[i] {
			t.Errorf("command %d stats diverge: batched=%+v scalar=%+v", i, batchedRes[i], scalarRes[i])
		}
	}
	if !bytes.Equal(batchedData, scalarData) {
		t.Fatal("final space contents diverge between batched and scalar paths")
	}
}

// TestDifferentialConcurrentVsSerializedWrites: lock modes must be
// data-equivalent. Sixteen streams overwrite disjoint tiles of one space
// twice — once on the concurrent write path (per-space serialization,
// background GC) and once on the exclusive-lock path (SerializedWrites +
// SynchronousGC, the pre-PR behavior) — and both devices must end with
// exactly the image the host computes. The payloads are keyed by tile, not
// by arrival order, so the final image is interleaving-independent even
// though the two runs schedule writes differently.
func TestDifferentialConcurrentVsSerializedWrites(t *testing.T) {
	const (
		clients = 16
		grid    = 16  // 16x16 tiles of 64x64 over the 1024x1024 space
		tiles   = 256 // grid * grid
		tileB   = 64 * 64 * 4
		passes  = 2
	)
	run := func(serialized bool) []byte {
		d, err := Open(Options{
			Mode:             ModeHardware,
			CapacityHint:     16 << 20,
			SerializedWrites: serialized,
			SynchronousGC:    serialized,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		id, err := d.CreateSpace(4, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				v, err := d.OpenSpace(id, []int64{1024, 1024})
				if err != nil {
					errs <- err
					return
				}
				defer v.Close()
				payload := make([]byte, tileB)
				buf := make([]byte, tileB)
				for p := 0; p < passes; p++ {
					for k := 0; k < per; k++ {
						tile := int64(c*per + k)
						coord := []int64{tile / grid, tile % grid}
						rand.New(rand.NewSource(int64(p)*tiles + tile)).Read(payload)
						if _, err := v.Write(coord, []int64{64, 64}, payload); err != nil {
							errs <- fmt.Errorf("pass %d tile %d write: %w", p, tile, err)
							return
						}
						data, _, err := v.ReadInto(coord, []int64{64, 64}, buf)
						if err != nil {
							errs <- fmt.Errorf("pass %d tile %d read: %w", p, tile, err)
							return
						}
						if !bytes.Equal(data, payload) {
							errs <- fmt.Errorf("pass %d tile %d read back wrong bytes", p, tile)
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		final, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := final.Read([]int64{0, 0}, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := final.Close(); err != nil {
			t.Fatal(err)
		}
		return full
	}

	// The host-side expected image: every tile holds its final-pass payload.
	want := make([]byte, 1024*1024*4)
	tilePayload := make([]byte, tileB)
	for tile := int64(0); tile < tiles; tile++ {
		rand.New(rand.NewSource(int64(passes-1)*tiles + tile)).Read(tilePayload)
		lo := [2]int64{tile / grid * 64, tile % grid * 64}
		for r := int64(0); r < 64; r++ {
			row := ((lo[0]+r)*1024 + lo[1]) * 4
			copy(want[row:row+64*4], tilePayload[r*64*4:(r+1)*64*4])
		}
	}
	concurrentImg := run(false)
	serializedImg := run(true)
	if !bytes.Equal(concurrentImg, want) {
		t.Error("concurrent write path diverged from the host image")
	}
	if !bytes.Equal(serializedImg, want) {
		t.Error("serialized write path diverged from the host image")
	}
	if !bytes.Equal(concurrentImg, serializedImg) {
		t.Error("lock modes disagree on the final space contents")
	}
}
